package fault

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aiacc/engine"
	"aiacc/mpi"
	"aiacc/tensor"
	"aiacc/transport"
)

func sampleParams() map[string]*tensor.Tensor {
	w := tensor.FromSlice([]float32{1, 2, 3})
	b := tensor.FromSlice([]float32{4})
	return map[string]*tensor.Tensor{"w": w, "b": b}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	params := sampleParams()
	ck := Snapshot(42, params, map[string]string{"model": "tinymlp"})
	if ck.Step != 42 || len(ck.Params) != 2 || ck.Meta["model"] != "tinymlp" {
		t.Fatalf("snapshot = %+v", ck)
	}
	// Snapshot must be a copy.
	params["w"].Set(0, 99)
	if ck.Params["w"][0] != 1 {
		t.Error("snapshot aliases live tensors")
	}
	// Restore into fresh tensors.
	dst := map[string]*tensor.Tensor{"w": tensor.New(3), "b": tensor.New(1)}
	if err := ck.Restore(dst); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst["w"].At(0) != 1 || dst["w"].At(2) != 3 || dst["b"].At(0) != 4 {
		t.Errorf("restored values wrong: %v %v", dst["w"].Data(), dst["b"].Data())
	}
}

func TestRestoreErrors(t *testing.T) {
	ck := Snapshot(1, sampleParams(), nil)
	missing := map[string]*tensor.Tensor{"w": tensor.New(3)}
	if err := ck.Restore(missing); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("missing param error = %v", err)
	}
	wrongLen := map[string]*tensor.Tensor{"w": tensor.New(5), "b": tensor.New(1)}
	if err := ck.Restore(wrongLen); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("wrong length error = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ck := Snapshot(7, sampleParams(), map[string]string{"k": "v"})
	var buf bytes.Buffer
	if err := ck.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Step != 7 || got.Meta["k"] != "v" || got.Params["w"][1] != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := Read(bytes.NewBufferString("junk")); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("corrupt read error = %v", err)
	}
}

func TestManagerSaveLatestPrune(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty Latest error = %v", err)
	}
	for step := 1; step <= 5; step++ {
		params := sampleParams()
		params["w"].Set(0, float32(step))
		if err := m.Save(Snapshot(step, params, nil)); err != nil {
			t.Fatalf("Save(%d): %v", step, err)
		}
	}
	latest, err := m.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if latest.Step != 5 || latest.Params["w"][0] != 5 {
		t.Errorf("latest = step %d w0=%v", latest.Step, latest.Params["w"][0])
	}
	steps, err := m.steps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 4 || steps[1] != 5 {
		t.Errorf("retained steps = %v, want [4 5]", steps)
	}
}

func TestManagerKeepMinimum(t *testing.T) {
	m, err := NewManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.keep != 1 {
		t.Errorf("keep = %d, want clamped to 1", m.keep)
	}
}

// Simulated failure/restart: train, checkpoint, "crash", restore, verify
// state equality.
func TestCrashRestartCycle(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := sampleParams()
	for step := 1; step <= 10; step++ {
		params["w"].Set(0, float32(step)*1.5)
		if step%5 == 0 {
			if err := m.Save(Snapshot(step, params, nil)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: lose in-memory state.
	fresh := map[string]*tensor.Tensor{"w": tensor.New(3), "b": tensor.New(1)}
	ck, err := m.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Restore(fresh); err != nil {
		t.Fatal(err)
	}
	if ck.Step != 10 || fresh["w"].At(0) != 15 {
		t.Errorf("restart state: step=%d w0=%v", ck.Step, fresh["w"].At(0))
	}
}

// Elastic join: rank 0 holds trained parameters; joining workers receive
// them via collective SyncParameters.
func TestSyncParametersElasticJoin(t *testing.T) {
	const size = 3
	cfg := engine.DefaultConfig()
	net, err := transport.NewMem(size, cfg.RequiredStreams())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()

	var wg sync.WaitGroup
	errc := make(chan error, size)
	for r := 0; r < size; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, ep transport.Endpoint) {
			defer wg.Done()
			eng, err := engine.NewEngine(mpi.NewWorld(ep), cfg)
			if err != nil {
				errc <- err
				return
			}
			if err := eng.Register("w", 4); err != nil {
				errc <- err
				return
			}
			if err := eng.Start(); err != nil {
				errc <- err
				return
			}
			defer func() { _ = eng.Close() }()

			params := map[string]*tensor.Tensor{"w": tensor.New(4)}
			localStep := 0
			if r == 0 { // the established worker has live state
				for i := 0; i < 4; i++ {
					params["w"].Set(i, float32(10+i))
				}
				localStep = 70001 // exercises the two-halves step encoding
			}
			step, err := SyncParameters(eng, params, 0, localStep)
			if err != nil {
				errc <- err
				return
			}
			if step != 70001 {
				errc <- fmt.Errorf("joined worker got step %d, want 70001", step)
				return
			}
			for i := 0; i < 4; i++ {
				if params["w"].At(i) != float32(10+i) {
					errc <- errors.New("joined worker did not receive parameters")
					return
				}
			}
		}(r, ep)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestManagerSaveErrorPaths(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the manager so temp creation
	// fails (chmod is unreliable for root).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(Snapshot(1, sampleParams(), nil)); err == nil {
		t.Error("Save into a missing dir must fail")
	}
	if _, err := m.Latest(); err == nil {
		t.Error("Latest on a missing dir must fail")
	}
}

func TestManagerIgnoresJunkFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Junk files that must not confuse the step parser.
	for _, name := range []string{"README", "ckpt-junk.gob", "ckpt-5.tmp", "other.gob"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Latest with only junk = %v, want ErrNoCheckpoint", err)
	}
	if err := m.Save(Snapshot(3, sampleParams(), nil)); err != nil {
		t.Fatal(err)
	}
	ck, err := m.Latest()
	if err != nil || ck.Step != 3 {
		t.Errorf("Latest = %+v, %v", ck, err)
	}
}

func TestNewManagerBadDir(t *testing.T) {
	// A path under a file cannot be created.
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(filepath.Join(f, "sub"), 1); err == nil {
		t.Error("NewManager under a file must fail")
	}
}

func TestCheckpointWriteFailure(t *testing.T) {
	ck := Snapshot(1, sampleParams(), nil)
	if err := ck.Write(failWriter{}); err == nil {
		t.Error("Write to failing writer must fail")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }
