package main

import (
	"bytes"
	"fmt"
	"text/tabwriter"

	"aiacc/metrics"
)

// metricsSummary renders what the instrumented stack measured while one
// experiment ran: gradient bytes moved, wire traffic, the writev batch-size
// distribution and the buffer-pool hit rate (DESIGN.md §7). It works on the
// delta between two registry snapshots so each experiment reports only its
// own traffic; experiments that never touch the engine or a transport (the
// pure simulator figures) produce no output.
func metricsSummary(before, after metrics.Snapshot) string {
	d := newSnapshotDelta(before, after)

	iters := d.total("aiacc_engine_iterations_total")
	reduced := d.total("aiacc_engine_bytes_reduced_total")
	txBytes := d.total("aiacc_transport_tx_bytes_total")
	txFrames := d.total("aiacc_transport_tx_frames_total")
	rxBytes := d.total("aiacc_transport_rx_bytes_total")
	rxFrames := d.total("aiacc_transport_rx_frames_total")
	hits := d.total("aiacc_bufpool_hits_total")
	misses := d.total("aiacc_bufpool_misses_total")
	oversize := d.total("aiacc_bufpool_oversize_gets_total")
	if iters == 0 && txBytes == 0 && hits+misses == 0 {
		return ""
	}

	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	if iters > 0 {
		fmt.Fprintf(w, "engine\t%.0f iterations, %s reduced", iters, fmtBytes(reduced))
		if h := d.histogram("aiacc_engine_iteration_ns"); h.Count > 0 {
			fmt.Fprintf(w, ", mean iter %.2fms", h.Mean()/1e6)
		}
		fmt.Fprintln(w)
	}
	if txBytes > 0 || rxBytes > 0 {
		fmt.Fprintf(w, "wire\ttx %s in %.0f frames, rx %s in %.0f frames\n",
			fmtBytes(txBytes), txFrames, fmtBytes(rxBytes), rxFrames)
	}
	if h := d.histogram("aiacc_transport_flush_batch_frames"); h.Count > 0 {
		fmt.Fprintf(w, "writev batch\t%s (mean %.1f frames/flush)\n",
			fmtDistribution(h), h.Mean())
	}
	if hits+misses > 0 {
		fmt.Fprintf(w, "bufpool\thit rate %.1f%% (%.0f/%.0f), oversize %.0f\n",
			100*hits/(hits+misses), hits, hits+misses, oversize)
	}
	// Priority scheduler: how often urgent units preempted in-flight ones,
	// how many wire segments resumed without re-encoding, and how long units
	// waited behind the head of line.
	preempts := d.total("aiacc_engine_sched_preemptions_total")
	resumed := d.total("aiacc_engine_sched_resumed_segments_total")
	if preempts+resumed > 0 {
		fmt.Fprintf(w, "scheduler\t%.0f preemptions, %.0f resumed segments", preempts, resumed)
		if h := d.histogram("aiacc_engine_sched_hol_wait_ns"); h.Count > 0 {
			fmt.Fprintf(w, ", mean HOL wait %.2fms", h.Mean()/1e6)
		}
		fmt.Fprintln(w)
	}
	// Ring pipeline overlap: how the segmented all-reduce's critical path
	// split between waiting on the wire and codec/reduce compute.
	wireWait := d.total("aiacc_collective_wire_wait_ns_total")
	compute := d.total("aiacc_collective_compute_ns_total")
	if wireWait+compute > 0 {
		fmt.Fprintf(w, "ring pipeline\twire wait %.1fms, codec+reduce %.1fms (%.0f%% compute)\n",
			wireWait/1e6, compute/1e6, 100*compute/(wireWait+compute))
	}
	_ = w.Flush()
	return buf.String()
}

// snapshotDelta subtracts a "before" registry snapshot from an "after" one,
// series by series.
type snapshotDelta struct {
	before map[string]map[string]metrics.SeriesSnapshot
	after  metrics.Snapshot
}

func newSnapshotDelta(before, after metrics.Snapshot) snapshotDelta {
	idx := make(map[string]map[string]metrics.SeriesSnapshot, len(before.Families))
	for _, f := range before.Families {
		series := make(map[string]metrics.SeriesSnapshot, len(f.Series))
		for _, s := range f.Series {
			series[s.LabelString()] = s
		}
		idx[f.Name] = series
	}
	return snapshotDelta{before: idx, after: after}
}

// total sums the family's per-series value deltas (counters: growth during
// the window).
func (d snapshotDelta) total(family string) float64 {
	f := d.after.Family(family)
	if f == nil {
		return 0
	}
	var sum float64
	for _, s := range f.Series {
		sum += s.Value - d.before[family][s.LabelString()].Value
	}
	return sum
}

// histogram merges the family's per-series histogram deltas into one.
func (d snapshotDelta) histogram(family string) metrics.HistogramSnapshot {
	f := d.after.Family(family)
	if f == nil {
		return metrics.HistogramSnapshot{}
	}
	var out metrics.HistogramSnapshot
	for _, s := range f.Series {
		if s.Histogram == nil {
			continue
		}
		prev := d.before[family][s.LabelString()].Histogram
		out.Count += s.Histogram.Count
		out.Sum += s.Histogram.Sum
		if len(out.Buckets) == 0 {
			out.Buckets = make([]metrics.Bucket, len(s.Histogram.Buckets))
			for i, b := range s.Histogram.Buckets {
				out.Buckets[i].UpperBound = b.UpperBound
			}
		}
		for i, b := range s.Histogram.Buckets {
			if i < len(out.Buckets) {
				out.Buckets[i].CumulativeCount += b.CumulativeCount
			}
		}
		if prev != nil {
			out.Count -= prev.Count
			out.Sum -= prev.Sum
			for i, b := range prev.Buckets {
				if i < len(out.Buckets) {
					out.Buckets[i].CumulativeCount -= b.CumulativeCount
				}
			}
		}
	}
	return out
}

// fmtDistribution renders a histogram's non-cumulative bucket shares, e.g.
// "<=1 62%  <=2 25%  <=4 13%", skipping empty buckets.
func fmtDistribution(h metrics.HistogramSnapshot) string {
	var buf bytes.Buffer
	var prev uint64
	for _, b := range h.Buckets {
		n := b.CumulativeCount - prev
		prev = b.CumulativeCount
		if n == 0 {
			continue
		}
		if buf.Len() > 0 {
			buf.WriteString("  ")
		}
		fmt.Fprintf(&buf, "<=%d %.0f%%", b.UpperBound, 100*float64(n)/float64(h.Count))
	}
	if over := h.Count - prev; over > 0 {
		if buf.Len() > 0 {
			buf.WriteString("  ")
		}
		fmt.Fprintf(&buf, ">%d %.0f%%", h.Buckets[len(h.Buckets)-1].UpperBound,
			100*float64(over)/float64(h.Count))
	}
	return buf.String()
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
