// Package stream implements the multi-streamed communication thread pool of
// AIACC-Training (Algorithm 1). The pool owns N workers, each bound to a
// distinct stream id — the reproduction's equivalent of a CUDA stream with
// its own communication buffer. The engine dispatches all-reduce units to
// the workers; units on different streams proceed concurrently over the same
// physical network, multiplexing the link exactly as §V-B describes.
//
// Because the ring all-reduce matches messages FIFO per (peer, stream), all
// ranks must execute the same unit on the same stream in the same order.
// The pool therefore gives every stream its own FIFO queue; Submit assigns
// streams round-robin, which is deterministic as long as every rank submits
// units in the same (sequence) order — guaranteed by the packer's implicit
// ordering agreement.
package stream

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned when submitting to a closed pool.
var ErrClosed = errors.New("stream: pool closed")

// ErrBadStream indicates a stream id outside the pool.
var ErrBadStream = errors.New("stream: bad stream id")

// Task is one unit of communication work. It receives the stream id of the
// worker executing it, which it must use for all collective operations so
// that concurrent tasks never share a stream.
type Task func(streamID int) error

// Pool is a fixed-size pool of stream-bound workers, each with a private
// FIFO queue.
type Pool struct {
	queues []chan Task

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	firstErr error
	closed   bool
	next     int // round-robin cursor for Submit

	workerWG sync.WaitGroup
}

// Option configures a Pool.
type Option func(*config)

type config struct {
	depth int
}

// WithQueueDepth sets each stream's queue capacity. The default of 2 lets
// the dispatcher run ahead of a busy stream without unbounded buffering.
func WithQueueDepth(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.depth = n
		}
	}
}

// NewPool starts a pool of n workers bound to stream ids 0..n-1.
func NewPool(n int, opts ...Option) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: pool size %d", n)
	}
	cfg := config{depth: 2}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Pool{queues: make([]chan Task, n)}
	p.cond = sync.NewCond(&p.mu)
	for id := 0; id < n; id++ {
		p.queues[id] = make(chan Task, cfg.depth)
		p.workerWG.Add(1)
		go p.worker(id)
	}
	return p, nil
}

// Streams returns the number of workers (= stream ids).
func (p *Pool) Streams() int { return len(p.queues) }

func (p *Pool) worker(id int) {
	defer p.workerWG.Done()
	for task := range p.queues[id] {
		err := task(id)
		p.mu.Lock()
		if err != nil && p.firstErr == nil {
			p.firstErr = err
		}
		p.inflight--
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Submit dispatches a task to the next stream in round-robin order, blocking
// while that stream's queue is full. Round-robin assignment is deterministic:
// ranks submitting identical task sequences place task k on stream
// k mod Streams().
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	id := p.next
	p.next = (p.next + 1) % len(p.queues)
	p.inflight++
	p.mu.Unlock()
	p.queues[id] <- t
	return nil
}

// SubmitTo dispatches a task to a specific stream, blocking while that
// stream's queue is full.
func (p *Pool) SubmitTo(streamID int, t Task) error {
	if streamID < 0 || streamID >= len(p.queues) {
		return fmt.Errorf("%w: %d of %d", ErrBadStream, streamID, len(p.queues))
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.inflight++
	p.mu.Unlock()
	p.queues[streamID] <- t
	return nil
}

// Wait blocks until every submitted task has completed and returns the first
// task error observed since the last Wait. The error state resets on return.
func (p *Pool) Wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.inflight > 0 {
		p.cond.Wait()
	}
	err := p.firstErr
	p.firstErr = nil
	return err
}

// Close drains the pool: it waits for in-flight tasks, stops the workers and
// releases them. Close is idempotent; it returns the first task error seen.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for p.inflight > 0 {
		p.cond.Wait()
	}
	err := p.firstErr
	p.mu.Unlock()
	for _, q := range p.queues {
		close(q)
	}
	p.workerWG.Wait()
	return err
}
