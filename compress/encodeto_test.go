package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"aiacc/tensor"
)

// These property tests pin the append-style EncodeTo path to the original
// per-element wire format: for every codec, EncodeTo must produce bytes
// identical to a straightforward scalar reference, regardless of the bulk
// kernels (memmove, SWAR, table lookups) used underneath, and appending after
// an arbitrary prefix must not change the emitted bytes.

// referenceEncode is the original per-element encoding for the dense codecs.
func referenceEncode(name string, src []float32) []byte {
	switch name {
	case "fp32":
		out := make([]byte, 4*len(src))
		for i, v := range src {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
		}
		return out
	case "fp16":
		out := make([]byte, 2*len(src))
		for i, v := range src {
			binary.LittleEndian.PutUint16(out[2*i:], tensor.Float32ToHalf(v))
		}
		return out
	}
	panic("unknown reference codec " + name)
}

// checkEncodeToProperties verifies, for one codec and input, that
// Encode == EncodeTo(nil) == the suffix EncodeTo appends to a prefix, that
// the prefix is preserved, and that Decode round-trips the bytes.
func checkEncodeToProperties(t *testing.T, codec Codec, src []float32, want []byte) {
	t.Helper()
	plain := codec.Encode(src)
	if want != nil && !bytes.Equal(plain, want) {
		t.Fatalf("%s: Encode differs from scalar reference", codec.Name())
	}
	appendNil := codec.EncodeTo(nil, src)
	if !bytes.Equal(appendNil, plain) {
		t.Fatalf("%s: EncodeTo(nil) differs from Encode", codec.Name())
	}
	prefix := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	withPrefix := codec.EncodeTo(append([]byte(nil), prefix...), src)
	if !bytes.Equal(withPrefix[:len(prefix)], prefix) {
		t.Fatalf("%s: EncodeTo corrupted the prefix", codec.Name())
	}
	if !bytes.Equal(withPrefix[len(prefix):], plain) {
		t.Fatalf("%s: appended bytes differ from standalone encoding", codec.Name())
	}
	// Steady-state reuse: encoding into recycled capacity must not change
	// the bytes.
	reused := codec.EncodeTo(withPrefix[:0], src)
	if !bytes.Equal(reused, plain) {
		t.Fatalf("%s: EncodeTo into reused buffer differs", codec.Name())
	}
	back := make([]float32, len(src))
	if err := codec.Decode(back, plain); err != nil {
		t.Fatalf("%s: Decode: %v", codec.Name(), err)
	}
}

func TestEncodeToMatchesReferenceFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 5, 64, 1001} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4)))
		}
		checkEncodeToProperties(t, FP32{}, src, referenceEncode("fp32", src))
		// fp32 decode must reproduce inputs bit-exactly.
		back := make([]float32, n)
		if err := (FP32{}).Decode(back, (FP32{}).Encode(src)); err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if math.Float32bits(back[i]) != math.Float32bits(src[i]) {
				t.Fatalf("fp32 round trip element %d: %x != %x", i,
					math.Float32bits(back[i]), math.Float32bits(src[i]))
			}
		}
	}
}

// TestEncodeToMatchesReferenceFP16 drives every representable half pattern
// (including subnormals, infinities and NaNs), the fp32 neighbors of each
// (exercising both rounding directions and ties), plus a dense sweep of raw
// fp32 bit patterns, through the codec and compares with the scalar
// reference.
func TestEncodeToMatchesReferenceFP16(t *testing.T) {
	var src []float32
	for h := 0; h < 1<<16; h++ {
		f := tensor.HalfToFloat32(uint16(h))
		b := math.Float32bits(f)
		src = append(src, f, math.Float32frombits(b+1), math.Float32frombits(b-1))
	}
	for i := uint32(0); i < 1<<16; i++ {
		src = append(src, math.Float32frombits(i*65519))
	}
	checkEncodeToProperties(t, FP16{}, src, referenceEncode("fp16", src))

	// Decode of every encoded half must equal the scalar half->float
	// conversion.
	enc := (FP16{}).Encode(src)
	back := make([]float32, len(src))
	if err := (FP16{}).Decode(back, enc); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		want := tensor.HalfToFloat32(tensor.Float32ToHalf(src[i]))
		if math.Float32bits(back[i]) != math.Float32bits(want) {
			t.Fatalf("fp16 round trip element %d (%x): %x != %x", i,
				math.Float32bits(src[i]), math.Float32bits(back[i]), math.Float32bits(want))
		}
	}
}

// Odd lengths and sub-slice offsets mirror how the ring collectives slice
// chunks out of a larger tensor.
func TestEncodeToFP16OddLengthsAndOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := make([]float32, 80)
	for i := range base {
		base[i] = float32(rng.NormFloat64())
	}
	base[7] = 0
	base[8] = float32(math.Inf(1))
	base[9] = float32(math.NaN())
	base[10] = 5.96e-8 // half subnormal range
	for off := 0; off < 4; off++ {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 17, 76} {
			src := base[off : off+n]
			checkEncodeToProperties(t, FP16{}, src, referenceEncode("fp16", src))
		}
	}
}

func TestEncodeToMatchesEncodeTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 10, 100, 1000} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		for _, ratio := range []float64{0.01, 0.1, 1} {
			codec := TopK{Ratio: ratio}
			checkEncodeToProperties(t, codec, src, nil)
			// Structural check of the appended bytes: header, ascending
			// in-range indices, values bit-equal to the source.
			enc := codec.Encode(src)
			if n == 0 {
				continue
			}
			if got := int(binary.LittleEndian.Uint32(enc[0:])); got != n {
				t.Fatalf("topk n=%d ratio=%g: header count %d", n, ratio, got)
			}
			k := int(binary.LittleEndian.Uint32(enc[4:]))
			if len(enc) != 8+8*k {
				t.Fatalf("topk n=%d ratio=%g: %d bytes for k=%d", n, ratio, len(enc), k)
			}
			prev := -1
			for e := 0; e < k; e++ {
				idx := int(binary.LittleEndian.Uint32(enc[8+8*e:]))
				if idx <= prev || idx >= n {
					t.Fatalf("topk n=%d ratio=%g: index %d after %d", n, ratio, idx, prev)
				}
				prev = idx
				v := binary.LittleEndian.Uint32(enc[12+8*e:])
				if v != math.Float32bits(src[idx]) {
					t.Fatalf("topk n=%d ratio=%g: value mismatch at %d", n, ratio, idx)
				}
			}
		}
	}
}
