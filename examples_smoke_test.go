package aiacc_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The examples are runnable mains; these smoke tests build and execute them
// end to end so they cannot rot. examples/bert is excluded: its live
// BERT-Large iteration intentionally allocates gigabytes.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each")
	}
	cases := []struct {
		dir     string
		wants   []string
		timeout time.Duration
	}{
		{
			dir:     "./examples/quickstart",
			wants:   []string{"step 100", "engine stats"},
			timeout: 2 * time.Minute,
		},
		{
			dir: "./examples/elastic",
			wants: []string{"simulated node failure", "rank 0 restored checkpoint",
				"checkpoint saved", "classified peer failure",
				"bit-identical to the uninterrupted run: true"},
			timeout: 2 * time.Minute,
		},
		{
			dir:     "./examples/ctr",
			wants:   []string{"decentralized sync", "128 GPUs", "13.4x"},
			timeout: 3 * time.Minute,
		},
		{
			dir:     "./examples/hybrid",
			wants:   []string{"shard 0", "shard 1", "Fig. 13"},
			timeout: 2 * time.Minute,
		},
		{
			dir:     "./examples/imagenet",
			wants:   []string{"resnet50", "vgg16", "aiacc"},
			timeout: 5 * time.Minute,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", tc.dir)
			out := &strings.Builder{}
			cmd.Stdout = out
			cmd.Stderr = out
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %v\n%s", err, out.String())
				}
			case <-time.After(tc.timeout):
				_ = cmd.Process.Kill()
				t.Fatalf("example timed out after %v\n%s", tc.timeout, out.String())
			}
			text := out.String()
			for _, want := range tc.wants {
				if !strings.Contains(text, want) {
					t.Errorf("output missing %q:\n%s", want, text)
				}
			}
		})
	}
}
