package engine

import (
	"strconv"
	"time"

	"aiacc/metrics"
)

// Engine metrics (DESIGN.md §7). These quantify the paper's central claims on
// the live engine: iteration wall time, how much of it overlapped the
// caller's backward pass (Fig. 5), bytes per agreement round (eager partial
// dispatch, §V-A), packing unit sizes (granularity trade-off, §V-C) and
// per-stream utilization (multi-stream efficiency, §V-B).
type engineMetrics struct {
	iterNs     *metrics.Histogram  // full iteration wall time
	tailNs     *metrics.Histogram  // non-overlapped tail: the final pool drain
	overlap    *metrics.FloatGauge // 1 - tail/iteration, last iteration
	syncNs     *metrics.Histogram  // one agreement round, engine side
	freshCount *metrics.Histogram  // gradients agreed fresh per round
	roundBytes *metrics.Histogram  // bytes dispatched per sync round
	unitBytes  *metrics.Histogram  // packing unit payload sizes

	streamBusyNs []*metrics.Counter // cumulative all-reduce time per stream

	iterations *metrics.Counter
	units      *metrics.Counter
	bytes      *metrics.Counter
}

func newEngineMetrics(rank, streams int) *engineMetrics {
	rankL := metrics.L("rank", strconv.Itoa(rank))
	m := &engineMetrics{
		iterNs: metrics.NewHistogram("aiacc_engine_iteration_ns",
			"Engine iteration wall time.", metrics.LatencyNs, rankL),
		tailNs: metrics.NewHistogram("aiacc_engine_tail_wait_ns",
			"Non-overlapped communication tail per iteration (final stream-pool drain).",
			metrics.LatencyNs, rankL),
		overlap: metrics.NewFloatGauge("aiacc_engine_overlap_ratio",
			"Fraction of the last iteration overlapped with compute: 1 - tail/iteration.", rankL),
		syncNs: metrics.NewHistogram("aiacc_engine_sync_round_ns",
			"Agreement round wall time seen by the engine loop.", metrics.LatencyNs, rankL),
		freshCount: metrics.NewHistogram("aiacc_engine_fresh_gradients",
			"Gradients newly agreed per synchronization round.", metrics.SmallCount, rankL),
		roundBytes: metrics.NewHistogram("aiacc_engine_round_bytes",
			"Gradient bytes dispatched per synchronization round.", metrics.SizeBytes, rankL),
		unitBytes: metrics.NewHistogram("aiacc_engine_unit_bytes",
			"Packing unit payload size.", metrics.SizeBytes, rankL),
		iterations: metrics.NewCounter("aiacc_engine_iterations_total",
			"Engine iterations completed.", rankL),
		units: metrics.NewCounter("aiacc_engine_units_total",
			"All-reduce units dispatched.", rankL),
		bytes: metrics.NewCounter("aiacc_engine_bytes_reduced_total",
			"Gradient payload bytes reduced (pre-codec fp32).", rankL),
		streamBusyNs: make([]*metrics.Counter, streams),
	}
	for s := 0; s < streams; s++ {
		m.streamBusyNs[s] = metrics.NewCounter("aiacc_engine_stream_busy_ns_total",
			"Cumulative time each stream spent running all-reduce units; divide by wall time for per-stream utilization.",
			rankL, metrics.L("stream", strconv.Itoa(s)))
	}
	return m
}

// publishConfig records the engine's tunables as gauges so a metrics scrape
// shows which (streams, granularity) point the run — or the auto-tuner — is
// currently at.
func (e *Engine) publishConfig() {
	rankL := metrics.L("rank", strconv.Itoa(e.comm.Rank()))
	metrics.NewGauge("aiacc_engine_streams", "Configured communication streams.", rankL).
		Set(int64(e.cfg.Streams))
	metrics.NewGauge("aiacc_engine_granularity_bytes", "Configured all-reduce unit granularity.", rankL).
		Set(e.cfg.GranularityBytes)
	metrics.NewGauge("aiacc_engine_segment_bytes", "Configured ring wire-pipelining segment size (0 = collective default).", rankL).
		Set(e.cfg.SegmentBytes)
}

// clockStart returns the wall clock when metrics are enabled, else zero;
// paired with the IsZero checks below so a disabled registry skips every
// clock read.
func clockStart() time.Time {
	if metrics.Enabled() {
		return time.Now()
	}
	return time.Time{}
}
