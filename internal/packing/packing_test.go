package packing

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"aiacc/internal/gradsync"
)

// fixedGrads returns a byID lookup over gradients with the given sizes.
func fixedGrads(elems ...int) func(id int) (gradsync.Gradient, error) {
	return func(id int) (gradsync.Gradient, error) {
		if id < 0 || id >= len(elems) {
			return gradsync.Gradient{}, fmt.Errorf("no gradient %d", id)
		}
		return gradsync.Gradient{ID: id, Name: fmt.Sprintf("g%d", id), Elems: elems[id]}, nil
	}
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestNewPackerValidation(t *testing.T) {
	if _, err := NewPacker(0); !errors.Is(err, ErrBadGranularity) {
		t.Errorf("granularity 0 error = %v", err)
	}
	if _, err := NewPacker(3); !errors.Is(err, ErrBadGranularity) {
		t.Errorf("sub-element granularity error = %v", err)
	}
	p, err := NewPacker(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Granularity() != 1024 {
		t.Errorf("Granularity = %d elements, want 1024", p.Granularity())
	}
}

func TestPackMergesSmallTensors(t *testing.T) {
	p, _ := NewPacker(40) // 10 elements per unit
	units, err := p.Pack(fixedGrads(3, 4, 2, 5), allIDs(4), 0)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// 3+4+2 = 9 fits unit 0; 5 goes to unit 1.
	if len(units) != 2 {
		t.Fatalf("got %d units: %+v", len(units), units)
	}
	if units[0].Elems != 9 || len(units[0].Fragments) != 3 {
		t.Errorf("unit 0 = %+v", units[0])
	}
	if units[1].Elems != 5 || units[1].Fragments[0].GradID != 3 {
		t.Errorf("unit 1 = %+v", units[1])
	}
	if units[0].Seq != 0 || units[1].Seq != 1 {
		t.Error("sequence numbers wrong")
	}
	if units[1].Bytes() != 20 {
		t.Errorf("unit 1 bytes = %d, want 20", units[1].Bytes())
	}
}

func TestPackSplitsLargeTensor(t *testing.T) {
	p, _ := NewPacker(40) // 10 elements per unit
	units, err := p.Pack(fixedGrads(25), allIDs(1), 5)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if len(units) != 3 {
		t.Fatalf("got %d units, want 3", len(units))
	}
	wantSpans := [][3]int{{0, 0, 10}, {0, 10, 10}, {0, 20, 5}}
	for i, w := range wantSpans {
		f := units[i].Fragments[0]
		if f.GradID != w[0] || f.Offset != w[1] || f.Elems != w[2] {
			t.Errorf("unit %d fragment = %+v, want %v", i, f, w)
		}
		if units[i].Seq != 5+i {
			t.Errorf("unit %d seq = %d, want %d", i, units[i].Seq, 5+i)
		}
	}
}

func TestPackMixedSplitAndMerge(t *testing.T) {
	p, _ := NewPacker(32) // 8 elements per unit
	// 5 fills most of unit 0; 12 spans units 0-2 (3 into unit 0, 8 into
	// unit 1, 1 into unit 2); 2 joins unit 2.
	units, err := p.Pack(fixedGrads(5, 12, 2), allIDs(3), 0)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if len(units) != 3 {
		t.Fatalf("got %d units: %+v", len(units), units)
	}
	if units[0].Elems != 8 || units[1].Elems != 8 || units[2].Elems != 3 {
		t.Errorf("unit sizes = %d,%d,%d", units[0].Elems, units[1].Elems, units[2].Elems)
	}
	frags := FragmentsPerGradient(units)
	if frags[0] != 1 || frags[1] != 3 || frags[2] != 1 {
		t.Errorf("FragmentsPerGradient = %v", frags)
	}
}

func TestPackEmptyAndOrder(t *testing.T) {
	p, _ := NewPacker(64)
	units, err := p.Pack(fixedGrads(4, 4), nil, 0)
	if err != nil || len(units) != 0 {
		t.Errorf("empty ready set: %v units, err %v", len(units), err)
	}
	// Ready ids out of ascending order are restored to the canonical
	// (priority, id) order — with equal priorities, ascending id — so every
	// rank derives the same layout regardless of local readiness order.
	units, err = p.Pack(fixedGrads(4, 4, 4), []int{2, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Fragments[0].GradID != 0 || units[0].Fragments[1].GradID != 2 {
		t.Error("pack order must be canonical (priority, id) ascending")
	}
}

func TestPackUnknownGradient(t *testing.T) {
	p, _ := NewPacker(64)
	if _, err := p.Pack(fixedGrads(4), []int{7}, 0); err == nil {
		t.Error("unknown gradient must fail")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	p, _ := NewPacker(32)
	sizes := []int{5, 12, 2, 9}
	units, err := p.Pack(fixedGrads(sizes...), allIDs(len(sizes)), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Source tensors hold distinct values; destinations start zeroed.
	src := make(map[int][]float32, len(sizes))
	dst := make(map[int][]float32, len(sizes))
	for id, n := range sizes {
		src[id] = make([]float32, n)
		dst[id] = make([]float32, n)
		for i := range src[id] {
			src[id][i] = float32(id*1000 + i)
		}
	}
	srcLookup := func(id int) ([]float32, error) { return src[id], nil }
	dstLookup := func(id int) ([]float32, error) { return dst[id], nil }

	for _, u := range units {
		buf := make([]float32, u.Elems)
		if err := Gather(u, srcLookup, buf); err != nil {
			t.Fatalf("Gather unit %d: %v", u.Seq, err)
		}
		if err := Scatter(u, dstLookup, buf); err != nil {
			t.Fatalf("Scatter unit %d: %v", u.Seq, err)
		}
	}
	for id := range sizes {
		for i := range src[id] {
			if dst[id][i] != src[id][i] {
				t.Fatalf("gradient %d elem %d: got %v, want %v", id, i, dst[id][i], src[id][i])
			}
		}
	}
}

func TestGatherScatterErrors(t *testing.T) {
	u := Unit{Seq: 0, Fragments: []Fragment{{GradID: 0, Offset: 0, Elems: 4}}, Elems: 4}
	lookup := func(id int) ([]float32, error) { return make([]float32, 4), nil }
	if err := Gather(u, lookup, make([]float32, 3)); !errors.Is(err, ErrFragmentRange) {
		t.Errorf("short buffer gather error = %v", err)
	}
	if err := Scatter(u, lookup, make([]float32, 5)); !errors.Is(err, ErrFragmentRange) {
		t.Errorf("long buffer scatter error = %v", err)
	}
	badFrag := Unit{Seq: 0, Fragments: []Fragment{{GradID: 0, Offset: 2, Elems: 4}}, Elems: 4}
	if err := Gather(badFrag, lookup, make([]float32, 4)); !errors.Is(err, ErrFragmentRange) {
		t.Errorf("overrun fragment gather error = %v", err)
	}
	if err := Scatter(badFrag, lookup, make([]float32, 4)); !errors.Is(err, ErrFragmentRange) {
		t.Errorf("overrun fragment scatter error = %v", err)
	}
	failLookup := func(id int) ([]float32, error) { return nil, errors.New("boom") }
	if err := Gather(u, failLookup, make([]float32, 4)); err == nil {
		t.Error("lookup failure must propagate")
	}
}

// Properties that must hold for any gradient sizes and granularity:
//  1. every unit except possibly trailing ones is within granularity,
//  2. fragments tile each gradient exactly,
//  3. unit Elems equals the sum of its fragment lengths,
//  4. sequence numbers are consecutive.
func TestPackInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nGrads := 1 + rng.Intn(20)
		sizes := make([]int, nGrads)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(500)
		}
		gran := int64(4 * (1 + rng.Intn(300)))
		p, err := NewPacker(gran)
		if err != nil {
			t.Fatal(err)
		}
		start := rng.Intn(100)
		units, err := p.Pack(fixedGrads(sizes...), allIDs(nGrads), start)
		if err != nil {
			t.Fatal(err)
		}
		covered := make(map[int][]bool, nGrads)
		for id, n := range sizes {
			covered[id] = make([]bool, n)
		}
		for i, u := range units {
			if u.Seq != start+i {
				t.Fatalf("trial %d: unit %d seq = %d, want %d", trial, i, u.Seq, start+i)
			}
			if u.Elems > p.Granularity() {
				t.Fatalf("trial %d: unit %d has %d elems > granularity %d", trial, i, u.Elems, p.Granularity())
			}
			sum := 0
			for _, f := range u.Fragments {
				sum += f.Elems
				for e := f.Offset; e < f.Offset+f.Elems; e++ {
					if covered[f.GradID][e] {
						t.Fatalf("trial %d: gradient %d elem %d covered twice", trial, f.GradID, e)
					}
					covered[f.GradID][e] = true
				}
			}
			if sum != u.Elems {
				t.Fatalf("trial %d: unit %d Elems %d != fragment sum %d", trial, i, u.Elems, sum)
			}
		}
		for id := range covered {
			for e, ok := range covered[id] {
				if !ok {
					t.Fatalf("trial %d: gradient %d elem %d never packed", trial, id, e)
				}
			}
		}
	}
}
