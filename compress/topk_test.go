package compress

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestTopKName(t *testing.T) {
	if (TopK{Ratio: 0.01}).Name() != "top0.01" {
		t.Errorf("Name = %q", TopK{Ratio: 0.01}.Name())
	}
	// Invalid ratios fall back to 1%.
	if (TopK{}).Name() != "top0.01" || (TopK{Ratio: 2}).Name() != "top0.01" {
		t.Error("ratio fallback wrong")
	}
}

func TestTopKKeepsLargestMagnitudes(t *testing.T) {
	src := []float32{0.1, -5, 0.2, 3, -0.05, 0.4, -2, 0}
	c := TopK{Ratio: 0.375} // keep 3 of 8
	dst := make([]float32, len(src))
	if err := c.Decode(dst, c.Encode(src)); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, -5, 0, 3, 0, 0, -2, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestTopKKeepAtLeastOne(t *testing.T) {
	c := TopK{Ratio: 0.001}
	src := []float32{0.5, 0.1}
	dst := make([]float32, 2)
	if err := c.Decode(dst, c.Encode(src)); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0.5 || dst[1] != 0 {
		t.Errorf("dst = %v", dst)
	}
}

func TestTopKFullRatioIsLossless(t *testing.T) {
	c := TopK{Ratio: 1}
	src := []float32{1, -2, 3, 0, 5}
	dst := make([]float32, len(src))
	if err := c.Decode(dst, c.Encode(src)); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], src[i])
		}
	}
}

func TestTopKWireBytes(t *testing.T) {
	c := TopK{Ratio: 0.01}
	if got := c.WireBytes(10000); got != 8+8*100 {
		t.Errorf("WireBytes(10000) = %d", got)
	}
	if c.WireBytes(0) != 0 {
		t.Error("empty wire bytes wrong")
	}
	// Compression ratio on large tensors ~50x vs fp32.
	dense := int64(4 * 1_000_000)
	sparse := c.WireBytes(1_000_000)
	if ratio := float64(dense) / float64(sparse); ratio < 40 {
		t.Errorf("compression ratio = %.1fx, want ~50x", ratio)
	}
}

func TestTopKEncodedSizeMatchesWireBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := TopK{Ratio: 0.1}
	for _, n := range []int{1, 7, 100, 4096} {
		src := make([]float32, n)
		for i := range src {
			src[i] = rng.Float32() - 0.5
		}
		if got := int64(len(c.Encode(src))); got != c.WireBytes(n) {
			t.Errorf("n=%d: encoded %d bytes, WireBytes says %d", n, got, c.WireBytes(n))
		}
	}
}

func TestTopKDecodeErrors(t *testing.T) {
	c := TopK{Ratio: 0.5}
	buf := c.Encode([]float32{1, 2, 3, 4})
	if err := c.Decode(make([]float32, 5), buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("length mismatch error = %v", err)
	}
	if err := c.Decode(make([]float32, 4), buf[:len(buf)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated payload error = %v", err)
	}
	if err := c.Decode(make([]float32, 4), []byte{1}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tiny payload error = %v", err)
	}
	if err := c.Decode(nil, nil); err != nil {
		t.Errorf("empty decode error = %v", err)
	}
}

func TestTopKResidual(t *testing.T) {
	c := TopK{Ratio: 0.25} // keep 1 of 4
	src := []float32{10, 1, -2, 0.5}
	res, err := c.Residual(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, -2, 0.5} // 10 was transmitted
	for i := range want {
		if res[i] != want[i] {
			t.Errorf("residual[%d] = %v, want %v", i, res[i], want[i])
		}
	}
	// kept + residual == original.
	kept := make([]float32, len(src))
	if err := c.Decode(kept, c.Encode(src)); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if kept[i]+res[i] != src[i] {
			t.Errorf("kept+residual != src at %d", i)
		}
	}
}

// Property: the kept set is exactly the k largest magnitudes for random
// inputs with distinct magnitudes.
func TestTopKSelectionCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		ratio := 0.05 + rng.Float64()*0.9
		c := TopK{Ratio: ratio}
		src := make([]float32, n)
		for i := range src {
			src[i] = (rng.Float32() - 0.5) * float32(math.Pow(10, float64(rng.Intn(4))))
		}
		dst := make([]float32, n)
		if err := c.Decode(dst, c.Encode(src)); err != nil {
			t.Fatal(err)
		}
		// Compute the expected threshold.
		mags := make([]float64, n)
		for i, v := range src {
			mags[i] = math.Abs(float64(v))
		}
		sorted := append([]float64(nil), mags...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		k := c.keep(n)
		kept := 0
		for i := range dst {
			if dst[i] != 0 || (src[i] == 0 && dst[i] == 0 && mags[i] >= sorted[k-1] && kept < k) {
				if dst[i] != 0 && dst[i] != src[i] {
					t.Fatalf("trial %d: transmitted value changed at %d", trial, i)
				}
			}
			if dst[i] != 0 {
				kept++
				if mags[i] < sorted[k-1]-1e-12 {
					t.Fatalf("trial %d: kept element %d below threshold", trial, i)
				}
			}
		}
		if kept > k {
			t.Fatalf("trial %d: kept %d > k=%d", trial, kept, k)
		}
	}
}
