// Production CTR recommender (§VIII-C): the workload where the master-node
// synchronization strategy collapses and AIACC's decentralized scheme wins
// by an order of magnitude.
//
// The synthetic CTR model has thousands of small embedding-gradient tensors
// and almost no compute. Part 1 demonstrates the mechanism *live*: the same
// engine run with the decentralized coordinator and with the Horovod-style
// master coordinator on a miniature CTR model (hundreds of tiny tensors),
// comparing wall-clock per iteration. Part 2 replays the full-scale
// production scenario (4096 embedding tables, 128 GPUs) on the cluster
// simulator, reproducing the paper's 13.4x-class improvement.
//
//	go run ./examples/ctr
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"aiacc/cluster"
	"aiacc/model"
	"aiacc/netmodel"
	"aiacc/perseus"
	"aiacc/tensor"
	"aiacc/transport"
)

func main() {
	if err := livePart(); err != nil {
		fmt.Fprintln(os.Stderr, "ctr live:", err)
		os.Exit(1)
	}
	if err := simPart(); err != nil {
		fmt.Fprintln(os.Stderr, "ctr sim:", err)
		os.Exit(1)
	}
}

// livePart runs a miniature CTR iteration (400 tiny embedding tensors) under
// both coordinators on 4 live workers and compares iteration latency.
func livePart() error {
	const (
		workers = 4
		tables  = 400
		rows    = 64
		dim     = 8
		iters   = 5
	)
	fmt.Printf("live mini-CTR: %d embedding tensors x %d workers, %d iterations per coordinator\n",
		tables, workers, iters)

	runWith := func(extra ...perseus.Option) (time.Duration, error) {
		opts := append([]perseus.Option{
			perseus.WithStreams(4),
			perseus.WithGranularity(64 << 10),
		}, extra...)
		streams, err := perseus.RequiredStreams(opts...)
		if err != nil {
			return 0, err
		}
		net, err := transport.NewMem(workers, streams)
		if err != nil {
			return 0, err
		}
		defer func() { _ = net.Close() }()

		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for r := 0; r < workers; r++ {
			ep, err := net.Endpoint(r)
			if err != nil {
				return 0, err
			}
			wg.Add(1)
			go func(rank int, ep transport.Endpoint) {
				defer wg.Done()
				s, err := perseus.NewSession(ep, opts...)
				if err != nil {
					errc <- err
					return
				}
				defer func() { _ = s.Close() }()
				grads := make(map[string]*tensor.Tensor, tables)
				for i := 0; i < tables; i++ {
					name := fmt.Sprintf("emb%04d.weight", i)
					if err := s.Register(name, rows*dim); err != nil {
						errc <- err
						return
					}
					grads[name] = tensor.Filled(float32(rank), rows*dim)
				}
				if err := s.Start(); err != nil {
					errc <- err
					return
				}
				for it := 0; it < iters; it++ {
					if err := s.AllReduce(grads); err != nil {
						errc <- err
						return
					}
				}
			}(r, ep)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			return 0, err
		}
		return time.Since(start) / iters, nil
	}

	decentralized, err := runWith()
	if err != nil {
		return err
	}
	master, err := runWith(perseus.WithMasterCoordinator())
	if err != nil {
		return err
	}
	fmt.Printf("  decentralized sync: %v/iter\n", decentralized.Round(time.Microsecond))
	fmt.Printf("  master sync:        %v/iter\n\n", master.Round(time.Microsecond))
	return nil
}

// simPart replays the production scenario at paper scale.
func simPart() error {
	ctr := model.CTR()
	fmt.Printf("production CTR on the cluster simulator: %.0fM parameters in %d gradient tensors\n",
		float64(ctr.NumParams())/1e6, ctr.NumGradients())

	mk := func(kind cluster.EngineKind, gpus int) cluster.Config {
		cfg := cluster.Config{
			Topology: netmodel.V100Cluster(gpus),
			GPU:      cluster.V100(),
			Model:    ctr,
			Engine:   cluster.EngineDefaults(kind),
		}
		if kind == cluster.AIACC {
			cfg.Decentralized = true
			cfg.Engine.Streams = 16
			cfg.Engine.WireBytesPerElem = 2 // production uses compression
		}
		return cfg
	}
	for _, gpus := range []int{32, 64, 128} {
		ai, err := cluster.Simulate(mk(cluster.AIACC, gpus))
		if err != nil {
			return err
		}
		hv, err := cluster.Simulate(mk(cluster.Horovod, gpus))
		if err != nil {
			return err
		}
		fmt.Printf("  %3d GPUs: aiacc %.2fM rec/s, horovod %.2fM rec/s -> %.1fx (%d sync rounds vs %d)\n",
			gpus, ai.Throughput/1e6, hv.Throughput/1e6, ai.Throughput/hv.Throughput,
			ai.SyncRounds, hv.SyncRounds)
	}
	// Records-per-5h capacity, the paper's "100+ billion entries in 5 hours".
	ai, err := cluster.Simulate(mk(cluster.AIACC, 128))
	if err != nil {
		return err
	}
	fmt.Printf("at 128 GPUs AIACC processes %.0fB records in 5 hours (paper: 100+ billion)\n",
		ai.Throughput*5*3600/1e9)
	fmt.Println("paper: 13.4x over hand-tuned Horovod DDL at 128 GPUs for this workload class")
	return nil
}
