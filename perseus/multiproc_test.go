package perseus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aiacc/optimizer"
	"aiacc/tensor"
	"aiacc/transport"
)

// The public API over the multi-process rendezvous mesh: sessions built on
// transport.NewTCPWorker endpoints (the deployment path of real multi-node
// runs) must behave identically to the in-process transports — broadcast,
// distributed optimizer, averaging, stats.
func TestSessionOverTCPWorkerMesh(t *testing.T) {
	const size = 3
	opts := []Option{WithStreams(2), WithGranularity(256 << 10)}
	streams, err := RequiredStreams(opts...)
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := transport.FreeAddrs(size)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	finals := map[int]float32{}
	var wg sync.WaitGroup
	errc := make(chan error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := transport.NewTCPWorker(r, streams, addrs, transport.WithDialTimeout(15*time.Second))
			if err != nil {
				errc <- fmt.Errorf("rank %d rendezvous: %w", r, err)
				return
			}
			defer func() { _ = ep.Close() }()
			s, err := NewSession(ep, opts...)
			if err != nil {
				errc <- err
				return
			}
			defer func() { _ = s.Close() }()

			w := tensor.New(8)
			if s.Rank() == 0 {
				w.Fill(5)
			}
			g := tensor.New(8)
			params := []optimizer.Param{{Name: "w", Weight: w, Grad: g}}
			if err := s.RegisterParams(params); err != nil {
				errc <- err
				return
			}
			if err := s.Start(); err != nil {
				errc <- err
				return
			}
			if err := s.BroadcastParameters(params, 0); err != nil {
				errc <- err
				return
			}
			if w.At(0) != 5 {
				errc <- fmt.Errorf("rank %d: broadcast missed, w=%v", s.Rank(), w.At(0))
				return
			}
			sgd, err := optimizer.NewSGD(optimizer.Const(0.1), 0, 0)
			if err != nil {
				errc <- err
				return
			}
			opt := s.DistributedOptimizer(sgd)
			for step := 1; step <= 10; step++ {
				// Rank-dependent gradients averaging to 1 everywhere.
				g.Fill(float32(s.Rank()) + 1 - float32(size-1)/2)
				if err := opt.Step(step, params); err != nil {
					errc <- err
					return
				}
			}
			// w = 5 - 0.1*1*10 = 4 on every rank.
			mu.Lock()
			finals[s.Rank()] = w.At(0)
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	var base float32
	for r, v := range finals {
		// Float32 rounding across averaged steps: accept a tiny epsilon,
		// but every rank must agree bit-exactly.
		if v < 3.999 || v > 4.001 {
			t.Errorf("rank %d final w = %v, want ~4", r, v)
		}
		if base == 0 {
			base = v
		} else if v != base {
			t.Errorf("rank %d final w = %v differs from %v", r, v, base)
		}
	}
}
