package shmnet

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Shared-memory region layout (one file per network):
//
//	┌────────────────────────────────────────────────────────────────┐
//	│ file header (128 B): magic, version, size, streams, ringBytes, │
//	│                      init word (0 empty / 1 busy / 2 ready)    │
//	├────────────────────────────────────────────────────────────────┤
//	│ rank slots (size × 64 B): attach word per rank                 │
//	│                      (0 free / 1 attached / 2 closed)          │
//	├────────────────────────────────────────────────────────────────┤
//	│ lanes (size² × streams), each:                                 │
//	│   lane header (128 B):                                         │
//	│     +0   tail  — producer cursor, monotonic uint64             │
//	│     +64  head  — consumer cursor, monotonic uint64             │
//	│   ring data (ringBytes, power of two)                          │
//	└────────────────────────────────────────────────────────────────┘
//
// tail and head sit in separate 64-byte cache lines so the producer's
// tail store never invalidates the line the consumer is spinning on (and
// vice versa). Both are monotonic — positions are cursor & (ringBytes-1) —
// so full/empty never alias and uint64 wraparound is a non-issue at any
// achievable rate.
const (
	magicWord     = 0x61696163632d7368 // "aiacc-sh"
	layoutVersion = 1

	fileHdrBytes  = 128
	rankSlotBytes = 64
	laneHdrBytes  = 128

	offMagic   = 0
	offVersion = 8
	offSize    = 16
	offStreams = 24
	offRing    = 32
	offInit    = 40

	initEmpty = 0
	initBusy  = 1
	initReady = 2

	rankFree     = 0
	rankAttached = 1
	rankClosed   = 2

	laneTailOff = 0
	laneHeadOff = 64
)

// region is one process's mapping of the shared file.
type region struct {
	mem       []byte
	size      int
	streams   int
	ringBytes int
}

func (r *region) word(off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&r.mem[off]))
}

func (r *region) rankState(rank int) *atomic.Uint64 {
	return r.word(fileHdrBytes + rank*rankSlotBytes)
}

func (r *region) laneOff(from, to, stream int) int {
	lane := (from*r.size+to)*r.streams + stream
	return fileHdrBytes + r.size*rankSlotBytes + lane*(laneHdrBytes+r.ringBytes)
}

func regionBytes(size, streams, ringBytes int) int {
	return fileHdrBytes + size*rankSlotBytes + size*size*streams*(laneHdrBytes+ringBytes)
}

// mapRegion maps the file and runs the init handshake: whichever attacher
// wins the CAS on the init word writes the geometry; everyone else waits for
// "ready" and verifies their geometry matches, so workers may start in any
// order and a misconfigured straggler fails loudly instead of corrupting the
// rings.
func mapRegion(f *os.File, size, streams, ringBytes int) (*region, error) {
	total := regionBytes(size, streams, ringBytes)
	if st, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("shmnet: stat %s: %w", f.Name(), err)
	} else if st.Size() < int64(total) {
		// Grow only: a second attacher with mismatched geometry must not
		// shrink the file under an established mapping (SIGBUS); the header
		// check below reports its mismatch instead.
		if err := f.Truncate(int64(total)); err != nil {
			return nil, fmt.Errorf("shmnet: truncate %s: %w", f.Name(), err)
		}
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shmnet: mmap %s: %w", f.Name(), err)
	}
	r := &region{mem: mem, size: size, streams: streams, ringBytes: ringBytes}
	init := r.word(offInit)
	if init.CompareAndSwap(initEmpty, initBusy) {
		r.word(offMagic).Store(magicWord)
		r.word(offVersion).Store(layoutVersion)
		r.word(offSize).Store(uint64(size))
		r.word(offStreams).Store(uint64(streams))
		r.word(offRing).Store(uint64(ringBytes))
		init.Store(initReady)
	} else {
		deadline := time.Now().Add(5 * time.Second)
		for init.Load() != initReady {
			if time.Now().After(deadline) {
				r.unmap()
				return nil, fmt.Errorf("shmnet: %s: init never completed", f.Name())
			}
			runtime.Gosched()
		}
		if r.word(offMagic).Load() != magicWord || r.word(offVersion).Load() != layoutVersion ||
			r.word(offSize).Load() != uint64(size) || r.word(offStreams).Load() != uint64(streams) ||
			r.word(offRing).Load() != uint64(ringBytes) {
			got := fmt.Sprintf("size=%d streams=%d ring=%d",
				r.word(offSize).Load(), r.word(offStreams).Load(), r.word(offRing).Load())
			r.unmap()
			return nil, fmt.Errorf("shmnet: %s: geometry mismatch: file has %s, caller wants size=%d streams=%d ring=%d",
				f.Name(), got, size, streams, ringBytes)
		}
	}
	return r, nil
}

func (r *region) unmap() {
	if r.mem != nil {
		_ = syscall.Munmap(r.mem)
		r.mem = nil
	}
}
