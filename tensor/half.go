package tensor

import (
	"encoding/binary"
	"math"
	"sync"
)

// IEEE 754 half-precision (binary16) conversion. AIACC-Training uses a
// half-precision representation of gradients to halve the bytes on the wire
// (§X, gradient compression); the reduction itself still happens in fp32.
// The conversion is implemented from scratch because the reproduction is
// stdlib-only.

// Float32ToHalf converts an fp32 value to its binary16 bit pattern with
// round-to-nearest-even, saturating overflow to ±Inf and flushing values
// below the subnormal range to signed zero.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127
	mant := bits & 0x7fffff

	switch {
	case exp == 128: // NaN or Inf
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // Inf
	case exp > 15: // overflow -> Inf
		return sign | 0x7c00
	case exp >= -14: // normal half range
		// 10-bit mantissa; round to nearest even on the 13 dropped bits.
		h := uint32(exp+15)<<10 | mant>>13
		round := mant & 0x1fff
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++
		}
		return sign | uint16(h)
	case exp >= -24: // subnormal half
		mant |= 0x800000 // restore the implicit bit
		shift := uint32(-exp - 1)
		h := mant >> (shift + 10)
		round := mant & ((1 << (shift + 10)) - 1)
		half := uint32(1) << (shift + 9)
		if round > half || (round == half && h&1 == 1) {
			h++
		}
		return sign | uint16(h)
	default: // underflow -> signed zero
		return sign
	}
}

// HalfToFloat32 converts a binary16 bit pattern to fp32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // Inf
		}
		return math.Float32frombits(sign | 0x7fc00000) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// EncodeHalf serializes src as little-endian binary16 into dst, which must
// have capacity for 2*len(src) bytes. It returns the encoded byte count.
//
// This is the bulk kernel behind the fp16 wire codec: values in the normal
// half range take a branchless integer path (identical bit results to
// Float32ToHalf, including round-to-nearest-even); zeros, subnormals and
// specials fall back to the scalar conversion.
func EncodeHalf(dst []byte, src []float32) int {
	if len(src) == 0 {
		return 0
	}
	total := 2 * len(src)
	d := dst[:total:total]
	s := src
	// 4-wide: when all four values are in the normal half range (the
	// overwhelmingly common case for gradients) the quad is converted
	// branchlessly and packed into one 64-bit store; otherwise each element
	// takes the general path. Sliding both slices forward instead of indexing
	// lets the compiler eliminate all per-element bounds checks.
	for len(s) >= 4 {
		b0 := math.Float32bits(s[0])
		b1 := math.Float32bits(s[1])
		b2 := math.Float32bits(s[2])
		b3 := math.Float32bits(s[3])
		a0 := b0 & 0x7fffffff
		a1 := b1 & 0x7fffffff
		a2 := b2 & 0x7fffffff
		a3 := b3 & 0x7fffffff
		var w uint64
		if a0-halfMinNormal < halfNormalSpan && a1-halfMinNormal < halfNormalSpan &&
			a2-halfMinNormal < halfNormalSpan && a3-halfMinNormal < halfNormalSpan {
			w = uint64(halfNormal(b0, a0)) |
				uint64(halfNormal(b1, a1))<<16 |
				uint64(halfNormal(b2, a2))<<32 |
				uint64(halfNormal(b3, a3))<<48
		} else {
			w = uint64(encodeHalfOne(b0)) |
				uint64(encodeHalfOne(b1))<<16 |
				uint64(encodeHalfOne(b2))<<32 |
				uint64(encodeHalfOne(b3))<<48
		}
		binary.LittleEndian.PutUint64(d, w)
		s = s[4:]
		d = d[8:]
	}
	for i, v := range s {
		binary.LittleEndian.PutUint16(d[2*i:], encodeHalfOne(math.Float32bits(v)))
	}
	return total
}

const (
	halfMinNormal  = 0x38800000                 // fp32 bits of 2^-14, the smallest normal half
	halfNormalSpan = 0x47800000 - halfMinNormal // width of the normal half range [2^-14, 2^16)
)

// halfNormal converts an fp32 bit pattern known to be in the normal half
// range; abs is bits with the sign cleared. Rebias the exponent by
// subtracting (127-15)<<23, then fold the drop of 13 mantissa bits and
// round-to-nearest-even into one add+shift: adding 0xfff plus the kept LSB
// carries into the result exactly when round > half, or round == half with
// the kept LSB odd. Bit-identical to Float32ToHalf on this range.
func halfNormal(bits, abs uint32) uint32 {
	return (bits>>16)&0x8000 | (abs-0x38000000+0xfff+(abs>>13&1))>>13
}

// encodeHalfOne converts one fp32 bit pattern, any value, bit-identical to
// Float32ToHalf.
func encodeHalfOne(bits uint32) uint16 {
	abs := bits & 0x7fffffff
	if abs-halfMinNormal < halfNormalSpan {
		return uint16(halfNormal(bits, abs))
	}
	return encodeHalfSlow(bits)
}

// encodeHalfSlow handles the patterns outside the normal half range. It is
// kept out of line so that encodeHalfOne stays within the inlining budget.
//
//go:noinline
func encodeHalfSlow(bits uint32) uint16 {
	if bits&0x7f800000 == 0 {
		// ±0 and fp32 subnormals (which all flush): sign only.
		return uint16(bits>>16) & 0x8000
	}
	// Half subnormals, underflow, overflow, Inf, NaN.
	return Float32ToHalf(math.Float32frombits(bits))
}

// halfTable maps every binary16 bit pattern to its float32 value: the fp16
// decode becomes one table load per element. 256 KiB, built on first use.
var (
	halfTableOnce sync.Once
	halfTable     *[1 << 16]float32
)

func initHalfTable() *[1 << 16]float32 {
	halfTableOnce.Do(func() {
		var t [1 << 16]float32
		for h := 0; h < 1<<16; h++ {
			t[h] = HalfToFloat32(uint16(h))
		}
		halfTable = &t
	})
	return halfTable
}

// DecodeHalf parses little-endian binary16 values from src into dst, which
// must have len(src)/2 elements.
func DecodeHalf(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	table := initHalfTable()
	s := src[: 2*len(dst) : 2*len(dst)]
	d := dst
	// 8-wide: each 64-bit load feeds four table lookups. Indexing a
	// [65536]float32 by a uint16-valued expression needs no bounds check,
	// and the sliding slices eliminate the store-side checks.
	for len(d) >= 8 {
		w := binary.LittleEndian.Uint64(s)
		d[0] = table[uint16(w)]
		d[1] = table[uint16(w>>16)]
		d[2] = table[uint16(w>>32)]
		d[3] = table[uint16(w>>48)]
		w = binary.LittleEndian.Uint64(s[8:])
		d[4] = table[uint16(w)]
		d[5] = table[uint16(w>>16)]
		d[6] = table[uint16(w>>32)]
		d[7] = table[uint16(w>>48)]
		d = d[8:]
		s = s[16:]
	}
	for i := range d {
		d[i] = table[binary.LittleEndian.Uint16(s[2*i:])]
	}
}
