package collective

import (
	"sync/atomic"
	"time"

	"aiacc/metrics"
)

// Collective metrics (DESIGN.md §7): one duration histogram + invocation
// counter per algorithm (the `op` label records which algorithm actually ran
// — what the auto-tuner's Algorithm knob selects), the wire chunk size each
// ring op settled on, and the split between the two ring phases.
//
// The hot path must stay 0-alloc, so timing uses the opStart/obs pair: both
// are plain functions (no closures), `defer obs(h, t0)` open-codes, and when
// metrics are disabled opStart returns the zero time and obs drops the
// sample, skipping both clock reads.
type opMetrics struct {
	ns  *metrics.Histogram
	ops *metrics.Counter
}

func newOpMetrics(op string) opMetrics {
	l := metrics.L("op", op)
	return opMetrics{
		ns: metrics.NewHistogram("aiacc_collective_op_ns",
			"Collective operation wall time, by algorithm.", metrics.LatencyNs, l),
		ops: metrics.NewCounter("aiacc_collective_ops_total",
			"Collective operations run, by algorithm.", l),
	}
}

var (
	mRing         = newOpMetrics("ring_allreduce")
	mHierarchical = newOpMetrics("hierarchical_allreduce")
	mBroadcast    = newOpMetrics("broadcast")
	mAllGather    = newOpMetrics("allgather")
	mAndBits      = newOpMetrics("and_bits")

	mChunkBytes = metrics.NewHistogram("aiacc_collective_chunk_wire_bytes",
		"Encoded wire size of one ring segment, observed post-encode.", metrics.SizeBytes)
	mPhaseRS = metrics.NewHistogram("aiacc_collective_phase_ns",
		"Ring phase wall time.", metrics.LatencyNs, metrics.L("phase", "reduce_scatter"))
	mPhaseAG = metrics.NewHistogram("aiacc_collective_phase_ns",
		"Ring phase wall time.", metrics.LatencyNs, metrics.L("phase", "all_gather"))

	// Segment-pipelining metrics: how finely the most recent ring op sliced
	// its chunks, where each segment's time went, and — the overlap headline —
	// how much of the op was spent blocked on the wire versus in codec and
	// reduction kernels. A pipelining win shows up as the compute counter
	// growing while wire-wait stays flat (compute hidden behind transfers).
	mSegCount = metrics.NewGauge("aiacc_collective_segment_count",
		"Wire segments per max-size ring chunk of the most recent ring all-reduce.")
	mSegEncodeNs = metrics.NewHistogram("aiacc_collective_segment_stage_ns",
		"Per-segment pipeline stage time.", metrics.LatencyNs, metrics.L("stage", "encode"))
	mSegDecodeNs = metrics.NewHistogram("aiacc_collective_segment_stage_ns",
		"Per-segment pipeline stage time.", metrics.LatencyNs, metrics.L("stage", "decode"))
	mSegReduceNs = metrics.NewHistogram("aiacc_collective_segment_stage_ns",
		"Per-segment pipeline stage time.", metrics.LatencyNs, metrics.L("stage", "reduce"))
	mWireWaitNs = metrics.NewCounter("aiacc_collective_wire_wait_ns_total",
		"Time ring ops spent blocked receiving segments from the wire (sampled estimate, see segSamplePeriod).")
	mComputeNs = metrics.NewCounter("aiacc_collective_compute_ns_total",
		"Time ring ops spent in codec and reduction kernels (sampled estimate, see segSamplePeriod).")
)

// opStart returns the wall clock when metrics are enabled, else the zero
// time; pair with obs/obsOp.
func opStart() time.Time {
	if metrics.Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// obs records the elapsed time since t0, unless t0 is zero.
func obs(h *metrics.Histogram, t0 time.Time) {
	if !t0.IsZero() {
		h.ObserveSince(t0)
	}
}

// obsOp records one completed operation: wall time plus invocation count.
func obsOp(m opMetrics, t0 time.Time) {
	if !t0.IsZero() {
		m.ns.ObserveSince(t0)
		m.ops.Inc()
	}
}

// segSamplePeriod trades pipeline-metric resolution against hot-path cost:
// per-segment stage timing runs on 1 ring op in segSamplePeriod (power of
// two). A small op makes ~6 clock reads per ring step when timed, and on
// virtualized hosts a clock read is expensive enough that timing every op
// blows the ≤2% instrumentation budget (TestMetricsOverheadGate). Sampling
// keeps the stage histograms statistically faithful; the wire-wait/compute
// counters are scaled by the period so their totals still estimate whole-run
// time and their ratio — the overlap headline — is unbiased.
const segSamplePeriod = 8

var segSampleTick atomic.Uint64

// segTimed reports whether this ring op should time its pipeline stages:
// false whenever the registry is disabled, and on all but 1 in
// segSamplePeriod ops otherwise. The pipeline samples this once per
// operation and passes it down, so an untimed op costs one branch per stage,
// no clock reads.
func segTimed() bool {
	if !metrics.Enabled() {
		return false
	}
	return segSampleTick.Add(1)%segSamplePeriod == 0
}

// segStart returns the wall clock on timed ops, else the zero time.
func segStart(timed bool) time.Time {
	if timed {
		return time.Now()
	}
	return time.Time{}
}

// segObs records one pipeline stage's duration into its histogram and the
// op's compute-side overlap counter (scaled to estimate the unsampled total).
func segObs(h *metrics.Histogram, t0 time.Time) {
	if !t0.IsZero() {
		d := time.Since(t0).Nanoseconds()
		h.Observe(d)
		mComputeNs.Add(d * segSamplePeriod)
	}
}

// segObsNext is segObs for back-to-back stages: it records the elapsed stage
// and restarts the clock in place for the next one, saving a clock read.
func segObsNext(h *metrics.Histogram, t0 *time.Time) {
	if t0.IsZero() {
		return
	}
	now := time.Now()
	d := now.Sub(*t0).Nanoseconds()
	h.Observe(d)
	mComputeNs.Add(d * segSamplePeriod)
	*t0 = now
}

// wireObs charges the time since t0 to the wire-wait side of the overlap
// counter pair, scaled like segObs.
func wireObs(t0 time.Time) {
	if !t0.IsZero() {
		mWireWaitNs.Add(time.Since(t0).Nanoseconds() * segSamplePeriod)
	}
}
