package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aiacc/netmodel"
)

// memNetwork is an in-process Network backed by Go channels. One channel
// exists per directed (from, to, stream) triple, so streams between the same
// pair of ranks never block each other — the property AIACC's multi-streamed
// communication depends on.
type memNetwork struct {
	size    int
	streams int
	link    *netmodel.Link
	sending []atomic.Int64 // per-sender in-flight modelled sends (one NIC each)

	// chans[from*size+to][stream] carries messages from -> to.
	chans [][]chan []byte

	mu        sync.Mutex
	closed    bool
	endpoints []*memEndpoint
}

var _ Network = (*memNetwork)(nil)

// MemOption configures a NewMem network.
type MemOption func(*memConfig)

type memConfig struct {
	buffer int
	link   *netmodel.Link
}

// WithBuffer sets the per-(pair,stream) channel buffer. The default of 1
// keeps senders and receivers loosely coupled without hiding backpressure;
// larger values model deeper NIC queues and are used by throughput-oriented
// benchmarks.
func WithBuffer(n int) MemOption {
	return func(c *memConfig) {
		if n >= 0 {
			c.buffer = n
		}
	}
}

// WithModeledLink throttles every stream to the link's *single-stream*
// bandwidth (plus its base latency), reproducing the paper's §III
// observation in live wall-clock time: one stream is capped at the
// single-stream efficiency of the link, while concurrent streams on other
// lanes proceed in parallel and aggregate bandwidth. Senders block for the
// modelled serialization delay.
func WithModeledLink(link netmodel.Link) MemOption {
	return func(c *memConfig) {
		l := link
		c.link = &l
	}
}

// NewMem creates an in-process network of `size` ranks with `streams`
// independent streams between every pair.
func NewMem(size, streams int, opts ...MemOption) (Network, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: size %d", ErrBadRank, size)
	}
	if streams <= 0 {
		return nil, fmt.Errorf("%w: streams %d", ErrBadStream, streams)
	}
	cfg := memConfig{buffer: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.link != nil {
		if err := cfg.link.Validate(); err != nil {
			return nil, err
		}
	}
	n := &memNetwork{size: size, streams: streams, link: cfg.link}
	if cfg.link != nil {
		n.sending = make([]atomic.Int64, size)
	}
	n.chans = make([][]chan []byte, size*size)
	for i := range n.chans {
		cs := make([]chan []byte, streams)
		for s := range cs {
			cs[s] = make(chan []byte, cfg.buffer)
		}
		n.chans[i] = cs
	}
	n.endpoints = make([]*memEndpoint, size)
	for r := 0; r < size; r++ {
		n.endpoints[r] = &memEndpoint{net: n, rank: r, closed: make(chan struct{})}
	}
	return n, nil
}

func (n *memNetwork) Size() int    { return n.size }
func (n *memNetwork) Streams() int { return n.streams }

func (n *memNetwork) Endpoint(r int) (Endpoint, error) {
	if err := checkRank(r, n.size); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	return n.endpoints[r], nil
}

func (n *memNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.close()
	}
	return nil
}

// memEndpoint is one rank's handle on a memNetwork.
type memEndpoint struct {
	net  *memNetwork
	rank int

	closeOnce sync.Once
	closed    chan struct{}
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) Rank() int    { return e.rank }
func (e *memEndpoint) Size() int    { return e.net.size }
func (e *memEndpoint) Streams() int { return e.net.streams }

func (e *memEndpoint) Send(to, stream int, data []byte) error {
	if err := checkRank(to, e.net.size); err != nil {
		return err
	}
	if err := checkStream(stream, e.net.streams); err != nil {
		return err
	}
	if l := e.net.link; l != nil && to != e.rank {
		// Model the stream's serialization delay: the payload drains at the
		// link's single-stream rate. Independent streams sleep concurrently,
		// so aggregate live bandwidth grows with stream count — the §III
		// behaviour, observable in wall-clock — but once this sender's
		// concurrent streams together would exceed its NIC's utilization
		// ceiling, each is slowed proportionally (shared physical egress).
		active := e.net.sending[e.rank].Add(1)
		delay := l.BaseLatency
		if bps := l.BytesPerSecond(1); bps > 0 {
			sec := float64(len(data)) / bps
			if over := float64(active) * l.SingleStreamEff / l.MaxUtilization; over > 1 {
				sec *= over
			}
			delay += time.Duration(sec * float64(time.Second))
		}
		select {
		case <-e.closed:
			e.net.sending[e.rank].Add(-1)
			return ErrClosed
		case <-time.After(delay):
		}
		e.net.sending[e.rank].Add(-1)
	}
	ch := e.net.chans[e.rank*e.net.size+to][stream]
	select {
	case <-e.closed:
		return ErrClosed
	case ch <- data:
		return nil
	}
}

func (e *memEndpoint) Recv(from, stream int) ([]byte, error) {
	if err := checkRank(from, e.net.size); err != nil {
		return nil, err
	}
	if err := checkStream(stream, e.net.streams); err != nil {
		return nil, err
	}
	ch := e.net.chans[from*e.net.size+e.rank][stream]
	select {
	case <-e.closed:
		return nil, ErrClosed
	case data := <-ch:
		return data, nil
	}
}

func (e *memEndpoint) Close() error {
	e.close()
	return nil
}

func (e *memEndpoint) close() {
	e.closeOnce.Do(func() { close(e.closed) })
}
