// Hybrid data+model parallelism, live (the setting of the paper's Fig. 13):
// six workers hold a model split into two shards — global ranks {0,2,4}
// replicate shard A, ranks {1,3,5} replicate shard B. Each shard's replicas
// form their own data-parallel group over a sub-communicator and run an
// independent AIACC engine; gradient aggregation happens *within* each shard
// group, concurrently, over the same transport.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"os"
	"sync"

	"aiacc/engine"
	"aiacc/mpi"
	"aiacc/tensor"
	"aiacc/transport"
)

const (
	workers = 6
	shards  = 2
	iters   = 5
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hybrid:", err)
		os.Exit(1)
	}
}

// shardGroup returns the global ranks replicating the given shard.
func shardGroup(shard int) []int {
	var g []int
	for r := shard; r < workers; r += shards {
		g = append(g, r)
	}
	return g
}

// shardParams returns the parameter layout owned by a shard: the model is
// split by layers, so the shards have different tensors.
func shardParams(shard int) map[string]int {
	if shard == 0 {
		return map[string]int{"conv1.weight": 9408, "conv2.weight": 36864, "conv2.bn": 128}
	}
	return map[string]int{"fc1.weight": 262144, "fc1.bias": 512, "fc2.weight": 5120}
}

func run() error {
	cfg := engine.DefaultConfig()
	cfg.Streams = 2
	cfg.GranularityBytes = 64 << 10
	cfg.MinSyncBytes = 64 << 10

	net, err := transport.NewMem(workers, cfg.RequiredStreams())
	if err != nil {
		return err
	}
	defer func() { _ = net.Close() }()

	fmt.Printf("%d workers, %d model shards; shard groups: %v and %v\n",
		workers, shards, shardGroup(0), shardGroup(1))

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for r := 0; r < workers; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(rank int, ep transport.Endpoint) {
			defer wg.Done()
			if err := worker(rank, ep, cfg); err != nil {
				errc <- fmt.Errorf("rank %d: %w", rank, err)
			}
		}(r, ep)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	fmt.Println("\nboth shard groups aggregated independently and concurrently — Fig. 13's hybrid scheme, live")
	return nil
}

func worker(rank int, ep transport.Endpoint, cfg engine.Config) error {
	world := mpi.NewWorld(ep)
	shard := rank % shards
	group, err := world.Subgroup(shardGroup(shard))
	if err != nil {
		return err
	}
	eng, err := engine.NewEngine(group, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = eng.Close() }()

	params := shardParams(shard)
	grads := make(map[string]*tensor.Tensor, len(params))
	for name, elems := range params {
		if err := eng.Register(name, elems); err != nil {
			return err
		}
		grads[name] = tensor.New(elems)
	}
	if err := eng.Start(); err != nil {
		return err
	}

	replicas := len(shardGroup(shard))
	for it := 1; it <= iters; it++ {
		for _, g := range grads {
			g.Fill(float32(rank + it))
		}
		for name, g := range grads {
			if err := eng.PushGradient(name, g); err != nil {
				return err
			}
		}
		if err := eng.WaitIteration(); err != nil {
			return err
		}
		// The average must cover exactly this shard's replicas.
		var want float32
		for _, gr := range shardGroup(shard) {
			want += float32(gr + it)
		}
		want /= float32(replicas)
		for name, g := range grads {
			if g.At(0) != want {
				return fmt.Errorf("iter %d %s: avg %v, want %v (shard cross-talk?)", it, name, g.At(0), want)
			}
		}
	}
	if group.Rank() == 0 {
		st := eng.Stats()
		fmt.Printf("shard %d (replicas %v): %d iterations, %d units, %s aggregated within the group\n",
			shard, shardGroup(shard), st.Iterations, st.Units, byteSize(st.BytesReduced))
	}
	return nil
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
