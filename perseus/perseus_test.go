package perseus

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"aiacc/optimizer"
	"aiacc/tensor"
	"aiacc/transport"
)

// runSessions builds a mem network and executes fn once per rank.
func runSessions(t *testing.T, size int, opts []Option, fn func(s *Session) error) {
	t.Helper()
	streams, err := RequiredStreams(opts...)
	if err != nil {
		t.Fatal(err)
	}
	net, err := transport.NewMem(size, streams)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	var wg sync.WaitGroup
	errc := make(chan error, size)
	for r := 0; r < size; r++ {
		ep, err := net.Endpoint(r)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, ep transport.Endpoint) {
			defer wg.Done()
			s, err := NewSession(ep, opts...)
			if err != nil {
				errc <- fmt.Errorf("rank %d: %w", r, err)
				return
			}
			defer func() { _ = s.Close() }()
			if err := fn(s); err != nil {
				errc <- fmt.Errorf("rank %d: %w", r, err)
			}
		}(r, ep)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestSessionBasics(t *testing.T) {
	runSessions(t, 4, nil, func(s *Session) error {
		if s.Size() != 4 {
			return fmt.Errorf("Size = %d", s.Size())
		}
		if s.Rank() < 0 || s.Rank() >= 4 {
			return fmt.Errorf("Rank = %d", s.Rank())
		}
		if s.LocalRank(2) != s.Rank()%2 {
			return fmt.Errorf("LocalRank = %d", s.LocalRank(2))
		}
		if s.LocalRank(0) != 0 {
			return fmt.Errorf("LocalRank(0) = %d", s.LocalRank(0))
		}
		return nil
	})
}

func TestAllReduceAverages(t *testing.T) {
	runSessions(t, 3, nil, func(s *Session) error {
		if err := s.Register("w", 100); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		g := tensor.Filled(float32(s.Rank()+1), 100)
		if err := s.AllReduce(map[string]*tensor.Tensor{"w": g}); err != nil {
			return err
		}
		for i := 0; i < g.Len(); i++ {
			if g.At(i) != 2 { // mean of 1,2,3
				return fmt.Errorf("g[%d] = %v, want 2", i, g.At(i))
			}
		}
		st := s.Stats()
		if st.Iterations != 1 || st.BytesReduced != 400 {
			return fmt.Errorf("stats = %+v", st)
		}
		return nil
	})
}

// The Horovod porting pattern end-to-end: broadcast initial parameters, wrap
// the optimizer, train a quadratic, verify identical convergence everywhere.
func TestDistributedOptimizerWorkflow(t *testing.T) {
	const size = 3
	var mu sync.Mutex
	finals := map[int]float32{}
	runSessions(t, size, []Option{WithStreams(2), WithGranularity(1 << 20)}, func(s *Session) error {
		w := tensor.New(1)
		if s.Rank() == 0 {
			w.Set(0, 10) // only root has the "loaded" model
		}
		g := tensor.New(1)
		params := []optimizer.Param{{Name: "w", Weight: w, Grad: g}}
		if err := s.RegisterParams(params); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		if err := s.BroadcastParameters(params, 0); err != nil {
			return err
		}
		if w.At(0) != 10 {
			return fmt.Errorf("broadcast missed: w=%v", w.At(0))
		}
		sgd, err := optimizer.NewSGD(optimizer.Const(0.1), 0, 0)
		if err != nil {
			return err
		}
		opt := s.DistributedOptimizer(sgd)
		if opt.Name() != "distributed-sgd" {
			return fmt.Errorf("optimizer name = %q", opt.Name())
		}
		// Minimize (w-3)^2 with rank-dependent gradient noise that cancels
		// in the average: grad = 2(w-3) + (rank - mean).
		for step := 1; step <= 80; step++ {
			noise := float32(s.Rank()) - float32(size-1)/2
			g.Set(0, 2*(w.At(0)-3)+noise)
			if err := opt.Step(step, params); err != nil {
				return err
			}
		}
		if math.Abs(float64(w.At(0))-3) > 1e-3 {
			return fmt.Errorf("w = %v, want ~3", w.At(0))
		}
		mu.Lock()
		finals[s.Rank()] = w.At(0)
		mu.Unlock()
		return nil
	})
	base := finals[0]
	for r, v := range finals {
		if v != base {
			t.Errorf("rank %d final w = %v, rank 0 = %v", r, v, base)
		}
	}
}

func TestOptionsApplyAndValidate(t *testing.T) {
	if _, err := RequiredStreams(WithStreams(7)); err != nil {
		t.Error(err)
	}
	n, err := RequiredStreams(WithStreams(7))
	if err != nil || n != 8 {
		t.Errorf("RequiredStreams = %d, %v", n, err)
	}
	for _, bad := range []Option{WithStreams(0), WithGranularity(1), WithHierarchicalAllReduce(0)} {
		if _, err := RequiredStreams(bad); err == nil {
			t.Error("invalid option accepted")
		}
	}
	// Feature options compose on a live multi-worker session.
	opts := []Option{
		WithStreams(3),
		WithGranularity(64 << 10),
		WithHierarchicalAllReduce(2),
		WithFP16Compression(),
		WithoutAveraging(),
	}
	runSessions(t, 4, opts, func(s *Session) error {
		if err := s.Register("w", 50); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		g := tensor.Filled(1, 50)
		if err := s.AllReduce(map[string]*tensor.Tensor{"w": g}); err != nil {
			return err
		}
		for i := 0; i < g.Len(); i++ {
			if g.At(i) != 4 { // sum, not average
				return fmt.Errorf("g[%d] = %v, want 4", i, g.At(i))
			}
		}
		return nil
	})
}

func TestMasterCoordinatorOption(t *testing.T) {
	runSessions(t, 3, []Option{WithMasterCoordinator()}, func(s *Session) error {
		if err := s.Register("w", 10); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		g := tensor.Filled(3, 10)
		return s.AllReduce(map[string]*tensor.Tensor{"w": g})
	})
}

func TestNaNDetectionOption(t *testing.T) {
	runSessions(t, 1, []Option{WithNaNDetection()}, func(s *Session) error {
		if err := s.Register("w", 4); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		bad := tensor.New(4)
		bad.Set(1, float32(math.Inf(1)))
		err := s.PushGradient("w", bad)
		var nan *NaNError
		if !errors.As(err, &nan) || nan.Name != "w" || nan.Index != 1 {
			return fmt.Errorf("NaN error = %v", err)
		}
		// Finish the iteration cleanly.
		if err := s.PushGradient("w", tensor.New(4)); err != nil {
			return err
		}
		return s.WaitIteration()
	})
}

func TestGradientCallbackOption(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	opts := []Option{WithGradientCallback(func(name string) {
		mu.Lock()
		seen[name]++
		mu.Unlock()
	})}
	runSessions(t, 1, opts, func(s *Session) error {
		if err := s.Register("a", 8); err != nil {
			return err
		}
		if err := s.Register("b", 8); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		return s.AllReduce(map[string]*tensor.Tensor{
			"a": tensor.New(8),
			"b": tensor.New(8),
		})
	})
	mu.Lock()
	defer mu.Unlock()
	if seen["a"] != 1 || seen["b"] != 1 {
		t.Errorf("callback counts = %v", seen)
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(nil); err == nil {
		t.Error("nil endpoint must fail")
	}
	net, err := transport.NewMem(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	ep, _ := net.Endpoint(0)
	if _, err := NewSession(ep, WithStreams(-1)); err == nil {
		t.Error("bad option must fail")
	}
	s, err := NewSession(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.WaitIteration(); !errors.Is(err, ErrNotStarted) {
		t.Errorf("pre-start wait error = %v", err)
	}
}
