// Package translate implements AIACC-Training's source-to-source translator
// (§IV "Programming interface"): it converts user training scripts to the
// Perseus API with zero manual refactoring.
//
// Two conversions are supported, mirroring the paper:
//
//   - Horovod programs: the import is rewritten from horovod to perseus —
//     the "changing one line of code" port, automated.
//   - Sequential (single-GPU) programs: distributed-training boilerplate is
//     injected — initialize Perseus, scale the learning rate by the world
//     size, wrap the optimizer with DistributedOptimizer, broadcast the
//     initial parameters, and guard checkpoint writes to rank 0.
//
// The translator is line-based and conservative: scripts it does not
// understand are returned unchanged with Mode Unrecognized rather than
// mangled.
package translate

import (
	"fmt"
	"regexp"
	"strings"
)

// Mode classifies what the translator did.
type Mode int

// Translation modes.
const (
	// HorovodPort rewrote a Horovod program's imports to Perseus.
	HorovodPort Mode = iota + 1
	// SequentialConvert injected DDL boilerplate into a sequential script.
	SequentialConvert
	// AlreadyPerseus left a script that already uses Perseus untouched.
	AlreadyPerseus
	// Unrecognized left a script without imports untouched.
	Unrecognized
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case HorovodPort:
		return "horovod-port"
	case SequentialConvert:
		return "sequential-convert"
	case AlreadyPerseus:
		return "already-perseus"
	case Unrecognized:
		return "unrecognized"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Change records one edit.
type Change struct {
	// Line is the 1-based line number in the *output* script.
	Line int
	// Kind is a short edit category.
	Kind string
	// Detail describes the edit.
	Detail string
}

// Result is a completed translation.
type Result struct {
	// Source is the translated script.
	Source string
	// Mode is the conversion performed.
	Mode Mode
	// Changes lists the edits.
	Changes []Change
}

var (
	importRe    = regexp.MustCompile(`^\s*(import|from)\s+\S+`)
	horovodRe   = regexp.MustCompile(`\bhorovod\b`)
	optimizerRe = regexp.MustCompile(`^(\s*)(\w+)\s*=\s*\S*(optim\.|Optimizer\()`)
	lrRe        = regexp.MustCompile(`\b(lr\s*=\s*[0-9][0-9_.eE+-]*)`)
	modelRe     = regexp.MustCompile(`^\s*(\w+)\s*=\s*\S*(Model|Net|resnet|vgg|bert|transformer)`)
	saveRe      = regexp.MustCompile(`^(\s*)((\w+\.)?save\()`)
)

// Translate converts one training script.
func Translate(src string) Result {
	switch {
	case strings.Contains(src, "perseus"):
		return Result{Source: src, Mode: AlreadyPerseus}
	case horovodRe.MatchString(src):
		return portHorovod(src)
	default:
		return convertSequential(src)
	}
}

// portHorovod swaps every horovod import/reference to perseus. Because the
// Perseus API is Horovod-compatible (§IV), the alias (`as hvd`) keeps the
// rest of the program working untouched.
func portHorovod(src string) Result {
	lines := strings.Split(src, "\n")
	res := Result{Mode: HorovodPort}
	for i, line := range lines {
		if horovodRe.MatchString(line) && importRe.MatchString(line) {
			lines[i] = horovodRe.ReplaceAllString(line, "perseus")
			res.Changes = append(res.Changes, Change{
				Line: i + 1, Kind: "import",
				Detail: "horovod import replaced with perseus",
			})
		}
	}
	res.Source = strings.Join(lines, "\n")
	return res
}

// convertSequential injects distributed-training boilerplate.
func convertSequential(src string) Result {
	lines := strings.Split(src, "\n")
	lastImport := -1
	for i, line := range lines {
		if importRe.MatchString(line) {
			lastImport = i
		}
	}
	if lastImport < 0 {
		return Result{Source: src, Mode: Unrecognized}
	}

	res := Result{Mode: SequentialConvert}
	var out []string
	emit := func(line string) { out = append(out, line) }
	note := func(kind, detail string) {
		res.Changes = append(res.Changes, Change{Line: len(out), Kind: kind, Detail: detail})
	}

	var modelVar, optVar string
	wrappedOpt := false
	broadcasted := false
	for i, line := range lines {
		switch {
		case i == lastImport:
			emit(line)
			emit("import perseus.torch as pvs")
			note("import", "perseus import injected")
			emit("pvs.init()")
			note("init", "distributed runtime initialization injected")
			continue
		case saveRe.MatchString(line):
			m := saveRe.FindStringSubmatch(line)
			emit(m[1] + "if pvs.rank() == 0:")
			note("guard", "checkpoint write guarded to rank 0")
			emit(m[1] + "    " + strings.TrimLeft(line, " \t"))
			continue
		}
		if m := modelRe.FindStringSubmatch(line); m != nil && modelVar == "" {
			modelVar = m[1]
		}
		if m := optimizerRe.FindStringSubmatch(line); m != nil && !wrappedOpt {
			indent, name := m[1], m[2]
			optVar = name
			edited := line
			if lr := lrRe.FindStringSubmatch(line); lr != nil {
				edited = lrRe.ReplaceAllString(line, lr[1]+" * pvs.size()")
				note("lr-scale", "learning rate scaled by world size")
			}
			emit(edited)
			emit(fmt.Sprintf("%s%s = pvs.DistributedOptimizer(%s)", indent, name, name))
			note("optimizer", "optimizer wrapped with pvs.DistributedOptimizer")
			if modelVar != "" && !broadcasted {
				emit(fmt.Sprintf("%spvs.broadcast_parameters(%s.state_dict(), root_rank=0)", indent, modelVar))
				note("broadcast", "initial parameters broadcast from rank 0")
				broadcasted = true
			}
			wrappedOpt = true
			continue
		}
		emit(line)
	}
	_ = optVar
	res.Source = strings.Join(out, "\n")
	return res
}
