package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"aiacc/tensor"
)

// The active implementation (unsafe or portable, whichever the build
// selected) must agree with encoding/binary on every conversion.

func TestFloat32sAgainstBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		src = append(src, float32(math.NaN()), float32(math.Inf(1)), 0, -0.0)
		want := make([]byte, 4*len(src))
		for i, v := range src {
			binary.LittleEndian.PutUint32(want[4*i:], math.Float32bits(v))
		}
		got := make([]byte, 4*len(src))
		PutFloat32s(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("PutFloat32s(n=%d) mismatch", n)
		}
		back := make([]float32, len(src))
		Float32s(back, got)
		for i := range back {
			if math.Float32bits(back[i]) != math.Float32bits(src[i]) {
				t.Fatalf("Float32s(n=%d) element %d: %x != %x", n, i,
					math.Float32bits(back[i]), math.Float32bits(src[i]))
			}
		}
	}
}

func TestUint64sAgainstBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 333} {
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64()
		}
		want := make([]byte, 8*len(src))
		for i, v := range src {
			binary.LittleEndian.PutUint64(want[8*i:], v)
		}
		got := make([]byte, 8*len(src))
		PutUint64s(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("PutUint64s(n=%d) mismatch", n)
		}
		back := make([]uint64, n)
		Uint64s(back, got)
		for i := range back {
			if back[i] != src[i] {
				t.Fatalf("Uint64s(n=%d) element %d: %x != %x", n, i, back[i], src[i])
			}
		}
	}
}

// Conversions must work on unaligned byte offsets: payloads routinely carry
// typed data at arbitrary positions (e.g. the top-k codec's 8-byte header
// followed by index/value pairs).
func TestUnalignedByteOffsets(t *testing.T) {
	src := []float32{1.5, -2.25, 3.75}
	buf := make([]byte, 4*len(src)+1)
	PutFloat32s(buf[1:], src)
	back := make([]float32, len(src))
	Float32s(back, buf[1:])
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("unaligned round trip element %d: %v != %v", i, back[i], src[i])
		}
	}
}

// EncodeHalf (SWAR on little-endian builds) must be bit-identical to the
// scalar reference for every value class: all exactly-representable halves,
// values that exercise both rounding directions and ties, specials, and a
// dense sweep of raw bit patterns.
func TestEncodeHalfMatchesScalar(t *testing.T) {
	var vals []float32
	// Every half pattern and its fp32 neighbors (rounding both ways).
	for h := 0; h < 1<<16; h++ {
		f := tensor.HalfToFloat32(uint16(h))
		b := math.Float32bits(f)
		vals = append(vals, f, math.Float32frombits(b+1), math.Float32frombits(b-1))
	}
	// Dense sweep across the whole fp32 bit space.
	for i := uint32(0); i < 1<<16; i++ {
		vals = append(vals, math.Float32frombits(i*65519))
	}
	got := make([]byte, 2*len(vals))
	if n := EncodeHalf(got, vals); n != len(got) {
		t.Fatalf("EncodeHalf returned %d, want %d", n, len(got))
	}
	for i, v := range vals {
		want := tensor.Float32ToHalf(v)
		if g := binary.LittleEndian.Uint16(got[2*i:]); g != want {
			t.Fatalf("EncodeHalf(%x) = %04x, want %04x", math.Float32bits(v), g, want)
		}
	}
}

// EncodeHalf must handle odd lengths (scalar tail) and sources at arbitrary
// offsets into a larger tensor, the way the ring collectives slice chunks.
func TestEncodeHalfOddLengthsAndOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]float32, 67)
	for i := range base {
		base[i] = float32(rng.NormFloat64())
	}
	base[11] = 0
	base[12] = float32(math.Inf(-1))
	for _, off := range []int{0, 1, 2, 3} {
		for _, n := range []int{0, 1, 2, 3, 5, 8, 63} {
			src := base[off : off+n]
			got := make([]byte, 2*n)
			EncodeHalf(got, src)
			for i, v := range src {
				want := tensor.Float32ToHalf(v)
				if g := binary.LittleEndian.Uint16(got[2*i:]); g != want {
					t.Fatalf("off=%d n=%d element %d: %04x, want %04x", off, n, i, g, want)
				}
			}
		}
	}
}

func TestGrow(t *testing.T) {
	b := Grow(nil, 8)
	if len(b) != 8 {
		t.Fatalf("Grow(nil, 8) len = %d", len(b))
	}
	b = b[:0]
	b = append(b, 1, 2, 3)
	g := Grow(b, 4)
	if len(g) != 7 {
		t.Fatalf("Grow len = %d, want 7", len(g))
	}
	if g[0] != 1 || g[1] != 2 || g[2] != 3 {
		t.Fatal("Grow must preserve prefix")
	}
	if cap(b) >= 7 && &g[0] != &b[:1][0] {
		t.Fatal("Grow must reuse capacity when available")
	}
}
