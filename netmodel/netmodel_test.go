package netmodel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPresetsValid(t *testing.T) {
	for _, l := range []Link{TCP30Gbps(), RDMA100Gbps(), NVLinkV100(), PCIeGen3()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%v: %v", l.Kind, err)
		}
	}
}

func TestValidateRejectsBadLinks(t *testing.T) {
	tests := []struct {
		name string
		link Link
	}{
		{name: "zero kind", link: Link{CapacityGbps: 1, SingleStreamEff: 0.5, MaxUtilization: 0.9}},
		{name: "zero capacity", link: Link{Kind: TCP, SingleStreamEff: 0.5, MaxUtilization: 0.9}},
		{name: "eff zero", link: Link{Kind: TCP, CapacityGbps: 1, MaxUtilization: 0.9}},
		{name: "eff above one", link: Link{Kind: TCP, CapacityGbps: 1, SingleStreamEff: 1.5, MaxUtilization: 1}},
		{name: "max below eff", link: Link{Kind: TCP, CapacityGbps: 1, SingleStreamEff: 0.5, MaxUtilization: 0.3}},
		{name: "negative latency", link: Link{Kind: TCP, CapacityGbps: 1, SingleStreamEff: 0.5, MaxUtilization: 0.9, BaseLatency: -time.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.link.Validate(); !errors.Is(err, ErrBadLink) {
				t.Errorf("Validate() = %v, want ErrBadLink", err)
			}
		})
	}
}

// The paper's headline measurement: one stream on the 30 Gbps VPC drives at
// most 30% of the link (~9-10 Gbps, the "NCCL only utilizes up to 10Gbps"
// observation), and RDMA single-stream efficiency is 5-10%.
func TestPaperCalibration(t *testing.T) {
	tcp := TCP30Gbps()
	if got := tcp.Utilization(1); got > 0.30+1e-9 {
		t.Errorf("TCP single-stream utilization = %.3f, paper says <= 0.30", got)
	}
	if got := tcp.EffectiveGbps(1); got < 8 || got > 10.5 {
		t.Errorf("TCP single-stream bandwidth = %.2f Gbps, want ~9-10", got)
	}
	rdma := RDMA100Gbps()
	if u := rdma.Utilization(1); u < 0.05 || u > 0.10 {
		t.Errorf("RDMA single-stream utilization = %.3f, paper says 5-10%%", u)
	}
	// Many streams approach (but never exceed) the ceiling.
	if u := tcp.Utilization(24); u < 0.95 || u > tcp.MaxUtilization {
		t.Errorf("TCP 24-stream utilization = %.3f, want near %.2f", u, tcp.MaxUtilization)
	}
}

func TestUtilizationMonotone(t *testing.T) {
	l := TCP30Gbps()
	prev := 0.0
	for n := 0; n <= 32; n++ {
		u := l.Utilization(n)
		if u < prev-1e-12 {
			t.Fatalf("utilization decreased at n=%d: %.4f < %.4f", n, u, prev)
		}
		if u > l.MaxUtilization+1e-12 {
			t.Fatalf("utilization exceeds ceiling at n=%d: %.4f", n, u)
		}
		prev = u
	}
	if l.Utilization(0) != 0 || l.Utilization(-3) != 0 {
		t.Error("non-positive stream count must give zero utilization")
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{Kind: TCP, CapacityGbps: 8, SingleStreamEff: 1, MaxUtilization: 1} // 1 GB/s exactly
	got := l.TransferTime(1e9, 1)
	if math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("1GB over 1GB/s = %v, want 1s", got)
	}
	l.BaseLatency = time.Millisecond
	if got := l.TransferTime(0, 4); got != time.Millisecond {
		t.Errorf("zero-byte transfer = %v, want base latency", got)
	}
	// More streams on a sub-saturated link are strictly faster.
	tcp := TCP30Gbps()
	if tcp.TransferTime(1<<30, 8) >= tcp.TransferTime(1<<30, 1) {
		t.Error("8 streams should beat 1 stream on TCP")
	}
}

func TestSegments(t *testing.T) {
	cases := []struct {
		bytes, seg int64
		want       int
	}{
		{1 << 20, 0, 1},    // disabled
		{1 << 20, -1, 1},   // disabled
		{0, 128 << 10, 1},  // empty payload still one segment
		{64 << 10, 128 << 10, 1},
		{128 << 10, 128 << 10, 1},
		{128<<10 + 1, 128 << 10, 2},
		{1 << 20, 128 << 10, 8},
		{1<<20 + 1, 128 << 10, 9},
	}
	for _, c := range cases {
		if got := Segments(c.bytes, c.seg); got != c.want {
			t.Errorf("Segments(%d, %d) = %d, want %d", c.bytes, c.seg, got, c.want)
		}
	}
}

func TestExposedCompute(t *testing.T) {
	total := 8 * time.Millisecond
	if got := ExposedCompute(total, 1); got != total {
		t.Errorf("one segment exposes everything: %v", got)
	}
	if got := ExposedCompute(total, 0); got != total {
		t.Errorf("degenerate segment count exposes everything: %v", got)
	}
	if got := ExposedCompute(total, 8); got != time.Millisecond {
		t.Errorf("8 segments expose 1/8: %v", got)
	}
	// More segments never expose more.
	prev := ExposedCompute(total, 1)
	for s := 2; s <= 64; s *= 2 {
		cur := ExposedCompute(total, s)
		if cur > prev {
			t.Fatalf("ExposedCompute not monotone at %d segments: %v > %v", s, cur, prev)
		}
		prev = cur
	}
}

func TestTopology(t *testing.T) {
	top := V100Cluster(32)
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if top.Nodes != 4 || top.GPUsPerNode != 8 || top.TotalGPUs() != 32 {
		t.Fatalf("V100Cluster(32) = %d nodes x %d gpus", top.Nodes, top.GPUsPerNode)
	}
	if top.NodeOf(0) != 0 || top.NodeOf(7) != 0 || top.NodeOf(8) != 1 || top.NodeOf(31) != 3 {
		t.Error("NodeOf mapping wrong")
	}
	if !top.SameNode(0, 7) || top.SameNode(7, 8) {
		t.Error("SameNode wrong")
	}
	if top.LinkBetween(0, 1).Kind != NVLink {
		t.Error("intra-node link must be NVLink")
	}
	if top.LinkBetween(0, 8).Kind != TCP {
		t.Error("inter-node link must be TCP")
	}
}

func TestTopologySmall(t *testing.T) {
	top := V100Cluster(4)
	if top.Nodes != 1 || top.GPUsPerNode != 4 {
		t.Errorf("V100Cluster(4) = %d nodes x %d gpus, want 1x4", top.Nodes, top.GPUsPerNode)
	}
	if err := top.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTopologyRDMA(t *testing.T) {
	top := V100RDMACluster(64)
	if top.Inter.Kind != RDMA {
		t.Error("V100RDMACluster inter-node link must be RDMA")
	}
	if top.TotalGPUs() != 64 {
		t.Errorf("TotalGPUs = %d, want 64", top.TotalGPUs())
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	bad := Topology{Nodes: 0, GPUsPerNode: 8}
	if err := bad.Validate(); !errors.Is(err, ErrBadLink) {
		t.Errorf("zero nodes error = %v", err)
	}
	bad = Topology{Nodes: 2, GPUsPerNode: 8, Intra: NVLinkV100()} // missing inter
	if err := bad.Validate(); !errors.Is(err, ErrBadLink) {
		t.Errorf("missing inter link error = %v", err)
	}
	// Single node never uses the inter link, so it may be zero.
	ok := Topology{Nodes: 1, GPUsPerNode: 8, Intra: NVLinkV100()}
	if err := ok.Validate(); err != nil {
		t.Errorf("single-node topology should validate, got %v", err)
	}
}

// Property: utilization is monotonically non-decreasing in stream count for
// any valid link.
func TestQuickUtilizationMonotone(t *testing.T) {
	f := func(eff, headroom float64, a, b uint8) bool {
		eff = 0.01 + math.Mod(math.Abs(eff), 0.98)
		maxU := eff + math.Mod(math.Abs(headroom), 1-eff)
		l := Link{Kind: TCP, CapacityGbps: 10, SingleStreamEff: eff, MaxUtilization: maxU}
		x, y := int(a%64), int(b%64)
		if x > y {
			x, y = y, x
		}
		return l.Utilization(x) <= l.Utilization(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transfer time is non-increasing in stream count.
func TestQuickTransferTimeMonotone(t *testing.T) {
	f := func(size uint32, a, b uint8) bool {
		l := TCP30Gbps()
		x, y := int(a%32)+1, int(b%32)+1
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(int64(size), y) <= l.TransferTime(int64(size), x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkKindString(t *testing.T) {
	tests := []struct {
		kind LinkKind
		want string
	}{
		{kind: TCP, want: "tcp"},
		{kind: RDMA, want: "rdma"},
		{kind: NVLink, want: "nvlink"},
		{kind: PCIe, want: "pcie"},
		{kind: LinkKind(9), want: "LinkKind(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
